"""Tests for on/off session processes and the availability history."""

import numpy as np
import pytest

from repro.churn.availability import (
    AvailabilityHistory,
    SessionProcess,
    empirical_availability,
    geometric_duration,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestGeometricDuration:
    def test_minimum_one_round(self, rng):
        assert geometric_duration(rng, 0.2) == 1

    def test_mean_matches(self, rng):
        samples = [geometric_duration(rng, 12.0) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(12.0, rel=0.05)

    def test_all_positive(self, rng):
        assert all(geometric_duration(rng, 3.0) >= 1 for _ in range(100))


class TestSessionProcess:
    def test_duty_cycle_long_run(self, rng):
        process = SessionProcess(availability=0.33, mean_online=24, rng=rng)
        timeline = list(process.sessions(600_000))
        assert empirical_availability(timeline) == pytest.approx(0.33, abs=0.02)

    def test_high_availability_duty_cycle(self, rng):
        process = SessionProcess(availability=0.95, mean_online=100, rng=rng)
        timeline = list(process.sessions(800_000))
        assert empirical_availability(timeline) == pytest.approx(0.95, abs=0.01)

    def test_always_online(self, rng):
        process = SessionProcess(availability=1.0, mean_online=10, rng=rng)
        assert process.always_online
        timeline = list(process.sessions(1000))
        assert empirical_availability(timeline) == 1.0

    def test_sessions_cover_horizon_exactly(self, rng):
        process = SessionProcess(availability=0.5, mean_online=7, rng=rng)
        timeline = list(process.sessions(12_345))
        assert sum(d for _, d in timeline) == 12_345

    def test_starts_online_by_default(self, rng):
        process = SessionProcess(availability=0.5, mean_online=5, rng=rng)
        first_state, _ = next(process.sessions(100))
        assert first_state is True

    def test_toggle_flips_state(self, rng):
        process = SessionProcess(availability=0.5, mean_online=5, rng=rng)
        assert process.online
        assert process.toggle() is False
        assert process.toggle() is True

    def test_zero_horizon(self, rng):
        process = SessionProcess(availability=0.5, mean_online=5, rng=rng)
        assert list(process.sessions(0)) == []

    def test_negative_horizon_rejected(self, rng):
        process = SessionProcess(availability=0.5, mean_online=5, rng=rng)
        with pytest.raises(ValueError):
            list(process.sessions(-1))

    @pytest.mark.parametrize("availability", [0.0, -0.1, 1.1])
    def test_invalid_availability(self, rng, availability):
        with pytest.raises(ValueError):
            SessionProcess(availability=availability, mean_online=5, rng=rng)

    def test_invalid_mean_online(self, rng):
        with pytest.raises(ValueError):
            SessionProcess(availability=0.5, mean_online=0, rng=rng)


class TestEmpiricalAvailability:
    def test_empty_timeline(self):
        assert empirical_availability([]) == 0.0

    def test_simple_split(self):
        assert empirical_availability([(True, 3), (False, 1)]) == 0.75


class TestAvailabilityHistory:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            AvailabilityHistory(0)

    def test_empty_history(self):
        assert AvailabilityHistory(10).availability() == 0.0

    def test_partial_window(self):
        history = AvailabilityHistory(10)
        history.record(True)
        history.record(True)
        history.record(False)
        assert history.observed_rounds == 3
        assert history.availability() == pytest.approx(2 / 3)

    def test_full_window_rolls_over(self):
        history = AvailabilityHistory(4)
        for _ in range(4):
            history.record(False)
        for _ in range(2):
            history.record(True)
        # Window now holds [False, False, True, True].
        assert history.availability() == pytest.approx(0.5)

    def test_record_span(self):
        history = AvailabilityHistory(100)
        history.record_span(True, 30)
        history.record_span(False, 10)
        assert history.observed_rounds == 40
        assert history.availability() == pytest.approx(0.75)

    def test_record_span_longer_than_window(self):
        history = AvailabilityHistory(8)
        history.record_span(True, 100)
        assert history.observed_rounds == 8
        assert history.availability() == 1.0

    def test_record_span_negative_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityHistory(4).record_span(True, -1)
