"""Tests for peer state and the population index."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn.profiles import DURABLE, ERRATIC
from repro.sim.network import Population, SampleableSet
from repro.sim.peer import Peer


class TestPeer:
    def test_age_grows_with_rounds(self):
        peer = Peer(1, ERRATIC, join_round=100)
        assert peer.age(100) == 0
        assert peer.age(150) == 50

    def test_age_never_negative(self):
        peer = Peer(1, ERRATIC, join_round=100)
        assert peer.age(50) == 0

    def test_observer_age_is_pinned(self):
        observer = Peer(1, DURABLE, join_round=0, is_observer=True, fixed_age=24)
        assert observer.age(0) == 24
        assert observer.age(10_000) == 24

    def test_quota_accounting(self):
        peer = Peer(1, DURABLE, join_round=0)
        assert peer.has_free_quota(2)
        peer.hosted.add(10)
        peer.hosted.add(11)
        assert not peer.has_free_quota(2)
        assert peer.stored_blocks() == 2

    def test_observer_blocks_do_not_count(self):
        peer = Peer(1, DURABLE, join_round=0)
        peer.hosted_free.add(99)
        assert peer.stored_blocks() == 0
        assert peer.has_free_quota(1)

    def test_remaining_lifetime(self):
        peer = Peer(1, ERRATIC, join_round=0, death_round=500)
        assert peer.remaining_lifetime(100) == 400
        assert peer.remaining_lifetime(600) == 0

    def test_remaining_lifetime_durable(self):
        peer = Peer(1, DURABLE, join_round=0, death_round=None)
        assert math.isinf(peer.remaining_lifetime(100))

    def test_uptime_accounting(self):
        peer = Peer(1, ERRATIC, join_round=0)
        peer.accumulate_uptime(10)      # online 0..10
        peer.online = False
        peer.accumulate_uptime(30)      # offline 10..30 (no-op: already folded)
        assert peer.online_rounds == 10
        assert peer.measured_availability(30) == pytest.approx(10 / 30)

    def test_measured_availability_includes_current_session(self):
        peer = Peer(1, ERRATIC, join_round=0)
        # Still online, never toggled: availability is 1 so far.
        assert peer.measured_availability(100) == 1.0

    def test_measured_availability_brand_new(self):
        peer = Peer(1, ERRATIC, join_round=50)
        assert peer.measured_availability(50) is None


class TestSampleableSet:
    def test_add_and_contains(self):
        s = SampleableSet()
        s.add(5)
        assert 5 in s
        assert len(s) == 1

    def test_add_idempotent(self):
        s = SampleableSet()
        s.add(5)
        s.add(5)
        assert len(s) == 1

    def test_discard(self):
        s = SampleableSet()
        for item in range(10):
            s.add(item)
        s.discard(3)
        assert 3 not in s
        assert len(s) == 9
        s.discard(3)  # idempotent
        assert len(s) == 9

    def test_sample_empty(self):
        assert SampleableSet().sample(np.random.default_rng(0)) is None

    def test_sample_returns_member(self):
        s = SampleableSet()
        for item in (10, 20, 30):
            s.add(item)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert s.sample(rng) in {10, 20, 30}

    def test_sample_is_roughly_uniform(self):
        s = SampleableSet()
        for item in range(5):
            s.add(item)
        rng = np.random.default_rng(0)
        counts = {i: 0 for i in range(5)}
        for _ in range(10_000):
            counts[s.sample(rng)] += 1
        for count in counts.values():
            assert count == pytest.approx(2000, rel=0.15)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 30)), max_size=60))
    def test_matches_reference_set(self, operations):
        """Stateful property: behaves exactly like a built-in set."""
        s = SampleableSet()
        reference = set()
        for add, item in operations:
            if add:
                s.add(item)
                reference.add(item)
            else:
                s.discard(item)
                reference.discard(item)
        assert len(s) == len(reference)
        assert set(iter(s)) == reference
        for item in range(31):
            assert (item in s) == (item in reference)


class TestPopulation:
    def make_peer(self, population, online=True, observer=False):
        peer = Peer(
            population.new_id(),
            DURABLE,
            join_round=0,
            is_observer=observer,
            fixed_age=0 if observer else None,
        )
        peer.online = online
        population.insert(peer)
        return peer

    def test_insert_and_lookup(self):
        population = Population()
        peer = self.make_peer(population)
        assert population.get(peer.peer_id) is peer
        assert len(population) == 1

    def test_duplicate_id_rejected(self):
        population = Population()
        peer = self.make_peer(population)
        with pytest.raises(ValueError):
            population.insert(peer)

    def test_online_peers_are_candidates(self):
        population = Population()
        peer = self.make_peer(population)
        assert peer.peer_id in population.online_candidates

    def test_observers_never_candidates(self):
        population = Population()
        observer = self.make_peer(population, observer=True)
        assert observer.peer_id not in population.online_candidates
        assert len(population) == 0  # observers aren't counted

    def test_offline_toggle_updates_index(self):
        population = Population()
        peer = self.make_peer(population)
        population.mark_offline(peer)
        assert peer.peer_id not in population.online_candidates
        population.mark_online(peer)
        assert peer.peer_id in population.online_candidates

    def test_remove_clears_everything(self):
        population = Population()
        peer = self.make_peer(population)
        population.remove(peer)
        assert not peer.alive
        assert not peer.online
        assert peer.peer_id not in population.online_candidates
        assert len(population) == 0

    def test_dead_peer_not_marked_online(self):
        population = Population()
        peer = self.make_peer(population)
        population.remove(peer)
        population.mark_online(peer)
        assert peer.peer_id not in population.online_candidates

    def test_iterators(self):
        population = Population()
        normal = self.make_peer(population)
        observer = self.make_peer(population, observer=True)
        assert [p.peer_id for p in population.alive_normal_peers()] == [
            normal.peer_id
        ]
        assert [p.peer_id for p in population.observers()] == [observer.peer_id]
