"""Tests for the protocol fidelity backend (PR 5).

Covers the acceptance criteria of the fidelity-backend refactor:

* abstract-mode config dicts and cache digests are byte-identical to
  the previous release (pinned digests), protocol-mode digests differ;
* same-seed protocol runs are byte-identical after serialization;
* the data plane (block stores, manifests, links, pending transfers)
  stays mutually consistent under churn (extended audit);
* bandwidth gating: repairs complete strictly later than they start,
  and a constrained uplink produces real queueing delay;
* fairness enforcement refuses stores once the cap binds.
"""

import dataclasses
import json

import pytest

from repro.exec.cache import canonical_json, config_digest
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationResult, run_simulation
from repro.sim.fidelity import FIDELITY_BACKENDS, available_fidelities, simulation_for
from repro.sim.metrics import MetricsCollector
from repro.sim.protocol import ProtocolSimulation

#: Digests of well-known abstract configs, pinned at the PR 4 values.
#: If either changes, the on-disk result cache silently orphans every
#: entry ever written — the exact failure mode invariant 3 of
#: docs/ARCHITECTURE.md exists to prevent.
PINNED_DEFAULT_DIGEST = (
    "659e35848bc897eab61700965ba4057067c5843fd02cfbcf2fd078d779ea0210"
)
PINNED_PAPER_DIGEST = (
    "d777c27d3ccbd19569d431098491ea362e4b090bade9df2cdd751fa671112c6f"
)


def protocol_config(**overrides):
    defaults = dict(
        population=80,
        rounds=500,
        data_blocks=8,
        parity_blocks=8,
        seed=3,
    )
    defaults.update(overrides)
    base = SimulationConfig.scaled(**defaults)
    return dataclasses.replace(base, fidelity="protocol")


class TestDigestStability:
    def test_default_abstract_digest_pinned(self):
        assert config_digest(SimulationConfig()) == PINNED_DEFAULT_DIGEST

    def test_paper_abstract_digest_pinned(self):
        assert config_digest(SimulationConfig.paper()) == PINNED_PAPER_DIGEST

    def test_abstract_to_dict_has_no_fidelity_keys(self):
        data = SimulationConfig().to_dict()
        for key in ("fidelity", "link_profile", "round_seconds",
                    "archive_bytes", "fairness_factor",
                    "impairment_profile", "retry_budget",
                    "retry_backoff_base", "retry_backoff_cap"):
            assert key not in data

    def test_protocol_digest_differs(self):
        abstract = SimulationConfig.scaled(population=80, rounds=500)
        protocol = dataclasses.replace(abstract, fidelity="protocol")
        assert config_digest(abstract) != config_digest(protocol)

    def test_protocol_knobs_enter_the_digest(self):
        base = protocol_config()
        assert config_digest(base) != config_digest(
            dataclasses.replace(base, link_profile="ftth")
        )
        assert config_digest(base) != config_digest(
            dataclasses.replace(base, fairness_factor=1.0)
        )
        assert config_digest(base) != config_digest(
            dataclasses.replace(base, archive_bytes=2 * base.archive_bytes)
        )
        assert config_digest(base) != config_digest(
            dataclasses.replace(base, impairment_profile="loss10")
        )
        assert config_digest(base) != config_digest(
            dataclasses.replace(base, retry_budget=5)
        )

    def test_protocol_config_round_trips(self):
        config = protocol_config(fairness_factor=2.0)
        rebuilt = SimulationConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert rebuilt == config


class TestFidelityRegistry:
    def test_builtins_registered(self):
        names = available_fidelities()
        assert "abstract" in names
        assert "protocol" in names

    def test_unknown_fidelity_fails_fast_with_choices(self):
        with pytest.raises(ValueError) as excinfo:
            SimulationConfig(fidelity="quantum")
        assert "protocol" in str(excinfo.value)

    def test_simulation_for_dispatches(self):
        assert isinstance(
            simulation_for(protocol_config()), ProtocolSimulation
        )
        assert not isinstance(
            simulation_for(SimulationConfig.scaled(population=50, rounds=100)),
            ProtocolSimulation,
        )
        assert FIDELITY_BACKENDS.get("protocol") is ProtocolSimulation

    def test_protocol_rejects_proactive(self):
        with pytest.raises(ValueError):
            ProtocolSimulation(protocol_config(proactive_rate=0.01))


class TestProtocolDeterminism:
    def test_same_seed_byte_identical(self):
        first = run_simulation(protocol_config())
        second = run_simulation(protocol_config())
        assert canonical_json(first.to_dict()) == canonical_json(
            second.to_dict()
        )

    def test_different_seeds_diverge(self):
        a = run_simulation(protocol_config(seed=1))
        b = run_simulation(protocol_config(seed=2))
        assert canonical_json(a.to_dict()) != canonical_json(b.to_dict())

    def test_shares_churn_trajectory_with_abstract(self):
        """Same seed => same joins/deaths at either fidelity."""
        abstract = run_simulation(
            SimulationConfig.scaled(
                population=80, rounds=500, data_blocks=8, parity_blocks=8,
                seed=3,
            )
        )
        protocol = run_simulation(protocol_config())
        assert protocol.deaths == abstract.deaths
        assert protocol.peers_created == abstract.peers_created


class TestProtocolRun:
    def test_places_and_repairs(self):
        result = run_simulation(protocol_config(rounds=800))
        assert result.metrics.total_placements > 0
        assert result.metrics.total_repairs > 0
        protocol = result.metrics.protocol
        assert protocol["transfers_completed"] > 0
        assert protocol["messages_sent"] > 0
        assert result.metrics.protocol_series  # sampled each census

    def test_audit_clean_after_run(self):
        simulation = ProtocolSimulation(protocol_config(rounds=800))
        simulation.run()
        assert simulation.audit() == []

    def test_audit_clean_with_observers_and_grace(self):
        from repro.sim.config import ObserverSpec

        config = dataclasses.replace(
            protocol_config(rounds=600),
            observers=(ObserverSpec("Baby", 1), ObserverSpec("Elder", 400)),
            grace_rounds=12,
        )
        simulation = ProtocolSimulation(config)
        result = simulation.run()
        assert simulation.audit() == []
        # Observers keep the abstract instantaneous path but still
        # accumulate their figure-3 counters.
        assert set(result.observer_totals()) <= {"Baby", "Elder"}

    def test_repairs_complete_strictly_later_than_started(self):
        """Bandwidth gating: archive links materialise only on completion."""
        result = run_simulation(protocol_config(rounds=800))
        protocol = result.metrics.protocol
        assert protocol["transfers_started"] >= protocol["transfers_completed"]
        assert protocol["transfer_seconds"] > 0

    def test_block_stores_respect_quota(self):
        simulation = ProtocolSimulation(protocol_config(rounds=600, quota=12))
        simulation.run()
        for store in simulation._stores.values():
            assert len(store) <= 12

    def test_transfer_cancelled_when_owner_dies_under_churn(self):
        """Long transfers + churn: cancellation releases the link cleanly."""
        config = dataclasses.replace(
            protocol_config(rounds=1200, seed=7),
            archive_bytes=2 * 1024 * 1024 * 1024,  # 2 GB: multi-round repairs
        )
        simulation = ProtocolSimulation(config)
        result = simulation.run()
        assert simulation.audit() == []
        protocol = result.metrics.protocol
        # Churn against multi-round transfers must produce cancellations
        # (owner deaths) and mid-flight recruit losses at this seed/scale.
        assert protocol.get("transfers_cancelled", 0) > 0
        assert protocol.get("blocks_cancelled", 0) > 0
        # The dead owner's in-flight transfer released its link time.
        assert protocol.get("link_seconds_released", 0) > 0
        # Cancelled transfers released their links: the only occupied
        # links left are the transfers still legitimately in flight at
        # the horizon cut, one per pending owner.
        assert simulation.links.in_flight() == len(simulation._pending)
        for owner_id in simulation._pending:
            assert simulation.population.peers[owner_id].alive

    def test_constrained_uplink_produces_queueing(self):
        config = dataclasses.replace(
            protocol_config(rounds=800),
            archive_bytes=512 * 1024 * 1024,
        )
        result = run_simulation(config)
        assert result.metrics.protocol["queue_delay_seconds"] > 0


class TestFairnessEnforcement:
    def test_fairness_cap_refuses_stores(self):
        result = run_simulation(
            protocol_config(rounds=800, fairness_factor=1.0, seed=5)
        )
        assert result.metrics.protocol.get("fairness_refusals", 0) > 0

    def test_no_fairness_counter_without_the_knob(self):
        result = run_simulation(protocol_config(rounds=400))
        assert "fairness_refusals" not in result.metrics.protocol


@pytest.mark.slow
class TestExecutorEquivalence:
    """Protocol cells obey invariant 2: byte-identical across backends."""

    def test_serial_process_distributed_identical(self, tmp_path):
        from repro.exec import ExperimentSpec, ResultCache, SweepExecutor

        config = protocol_config(rounds=400)

        def spec():
            return ExperimentSpec(
                name="protocol-equivalence",
                build=lambda params: config,
                seeds=(0, 1),
            )

        serial = SweepExecutor(backend="serial").run(spec())
        process = SweepExecutor(workers=2, backend="process").run(spec())
        distributed = SweepExecutor(
            backend="distributed", cache=ResultCache(tmp_path)
        ).run(spec())
        expected = [canonical_json(r.to_dict()) for r in serial.results]
        assert [
            canonical_json(r.to_dict()) for r in process.results
        ] == expected
        assert [
            canonical_json(r.to_dict()) for r in distributed.results
        ] == expected


class TestProtocolSerialization:
    def test_result_round_trip_preserves_protocol_metrics(self):
        result = run_simulation(protocol_config(rounds=600))
        first = canonical_json(result.to_dict())
        rebuilt = SimulationResult.from_dict(json.loads(first))
        assert canonical_json(rebuilt.to_dict()) == first
        assert rebuilt.metrics.protocol == result.metrics.protocol
        assert rebuilt.metrics.protocol_series == result.metrics.protocol_series

    def test_abstract_metrics_payload_shape_unchanged(self):
        result = run_simulation(
            SimulationConfig.scaled(population=60, rounds=300)
        )
        data = result.metrics.to_dict()
        assert "protocol" not in data
        assert "protocol_series" not in data

    def test_metrics_from_dict_tolerates_legacy_payloads(self):
        """A pre-PR-5 cache payload (no protocol keys) still loads."""
        result = run_simulation(
            SimulationConfig.scaled(population=60, rounds=300)
        )
        payload = result.metrics.to_dict()
        rebuilt = MetricsCollector.from_dict(payload)
        assert rebuilt.protocol == {}
        assert rebuilt.protocol_series == []
