"""Tests for the metrics collector and its derived rates."""

import pytest

from repro.core.categories import DEFAULT_SCHEME
from repro.sim.metrics import MetricsCollector


@pytest.fixture
def metrics():
    return MetricsCollector(DEFAULT_SCHEME)


MONTH = 720


class TestRecording:
    def test_repairs_attributed_by_age(self, metrics):
        metrics.record_repair(100, age=0, regenerated=4)
        metrics.record_repair(100, age=20 * MONTH, regenerated=2)
        assert metrics.by_category["Newcomers"].repairs == 1
        assert metrics.by_category["Elder peers"].repairs == 1
        assert metrics.total_repairs == 2

    def test_observer_events_tracked_separately(self, metrics):
        metrics.record_repair(100, age=0, regenerated=1, observer_name="Baby")
        assert metrics.observer_repairs["Baby"] == 1
        assert metrics.total_repairs == 0
        assert metrics.by_category["Newcomers"].repairs == 0

    def test_losses(self, metrics):
        metrics.record_loss(5, age=4 * MONTH)
        assert metrics.by_category["Young peers"].losses == 1
        assert metrics.total_losses == 1

    def test_blocked_and_placements(self, metrics):
        metrics.record_blocked(5, age=0)
        metrics.record_placement(5, age=0)
        assert metrics.by_category["Newcomers"].blocked == 1
        assert metrics.by_category["Newcomers"].placements == 1

    def test_warmup_exclusion(self):
        metrics = MetricsCollector(DEFAULT_SCHEME, warmup_rounds=1000)
        metrics.record_repair(500, age=0, regenerated=1)   # during warmup
        metrics.record_repair(1500, age=0, regenerated=1)  # after warmup
        assert metrics.by_category["Newcomers"].repairs == 1
        assert metrics.total_repairs == 2  # the raw total still counts both

    def test_pool_and_starved_counters(self, metrics):
        metrics.record_pool(examined=10, accepted=4)
        metrics.record_starved()
        assert metrics.pool_examined == 10
        assert metrics.pool_accepted == 4
        assert metrics.starved_repairs == 1


class TestSampling:
    def test_population_census(self, metrics):
        ages = [0, 0, 4 * MONTH, 20 * MONTH]
        metrics.sample(240, ages, interval=24)
        point = metrics.series[-1]
        assert point.population["Newcomers"] == 2
        assert point.population["Young peers"] == 1
        assert point.population["Elder peers"] == 1

    def test_peer_rounds_accrue(self, metrics):
        metrics.sample(24, [0, 0, 0], interval=24)
        metrics.sample(48, [0, 0], interval=24)
        assert metrics.by_category["Newcomers"].peer_rounds == 3 * 24 + 2 * 24

    def test_series_snapshots_cumulative_counts(self, metrics):
        metrics.record_repair(5, age=0, regenerated=1)
        metrics.sample(24, [0], interval=24)
        metrics.record_repair(30, age=0, regenerated=1)
        metrics.sample(48, [0], interval=24)
        repairs = [p.cumulative_repairs["Newcomers"] for p in metrics.series]
        assert repairs == [1, 2]


class TestRates:
    def test_repair_rate_per_1000(self, metrics):
        for _ in range(6):
            metrics.record_repair(100, age=0, regenerated=1)
        metrics.sample(24, [0] * 250, interval=24)
        # 6 repairs over 250 peers x 24 rounds = 0.001 per peer-round.
        assert metrics.repair_rate_per_1000("Newcomers") == pytest.approx(1.0)

    def test_rate_with_no_exposure_is_zero(self, metrics):
        metrics.record_repair(100, age=0, regenerated=1)
        assert metrics.repair_rate_per_1000("Newcomers") == 0.0

    def test_loss_rate(self, metrics):
        metrics.record_loss(100, age=0)
        metrics.sample(24, [0] * 1000, interval=1)
        assert metrics.loss_rate_per_1000("Newcomers") == pytest.approx(1.0)

    def test_rates_table_structure(self, metrics):
        metrics.sample(24, [0], interval=24)
        table = metrics.rates_table()
        assert set(table) == set(DEFAULT_SCHEME.names())
        assert "repairs_per_1000" in table["Newcomers"]


class TestSeriesViews:
    def test_observer_series(self, metrics):
        metrics.record_repair(5, age=0, regenerated=1, observer_name="Baby")
        metrics.sample(24, [], interval=24)
        metrics.record_repair(30, age=0, regenerated=1, observer_name="Baby")
        metrics.sample(48, [], interval=24)
        assert metrics.observer_series("Baby") == [(24, 1), (48, 2)]

    def test_observer_series_unknown_name(self, metrics):
        metrics.sample(24, [], interval=24)
        assert metrics.observer_series("Ghost") == [(24, 0)]

    def test_losses_per_peer_series(self, metrics):
        metrics.record_loss(5, age=0)
        metrics.sample(24, [0, 0], interval=24)  # 2 newcomers, 1 loss
        series = metrics.losses_per_peer_series("Newcomers")
        assert series == [(24, 0.5)]

    def test_losses_per_peer_handles_empty_category(self, metrics):
        metrics.sample(24, [], interval=24)
        assert metrics.losses_per_peer_series("Newcomers") == [(24, 0.0)]

    def test_category_loss_series(self, metrics):
        metrics.record_loss(5, age=0)
        metrics.sample(24, [0], interval=24)
        assert metrics.category_loss_series("Newcomers") == [(24, 1)]
