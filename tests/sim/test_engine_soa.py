"""Unit tests for the structure-of-arrays engine itself.

``test_soa_equivalence.py`` pins the backend to the object-graph engine
metric for metric; this file covers what equivalence cannot see — the
internal consistency of the incremental columns (``audit``), same-seed
determinism within the backend, and registration through the fidelity
registry.
"""

from __future__ import annotations

from repro.scenarios import scenario_by_name
from repro.sim.engine import run_simulation
from repro.sim.engine_soa import SoaSimulation
from repro.sim.fidelity import available_fidelities, simulation_for


def _config(seed=3, population=150, rounds=1000):
    return (
        scenario_by_name("paper")
        .with_population(population)
        .with_rounds(rounds)
        .with_seed(seed)
        .with_fidelity("abstract_soa")
        .build()
    )


def test_registered_as_fidelity_backend():
    assert "abstract_soa" in available_fidelities()
    simulation = simulation_for(_config(rounds=10))
    assert isinstance(simulation, SoaSimulation)
    assert simulation.fidelity == "abstract_soa"


def test_audit_clean_after_full_run():
    """Every incremental column agrees with a from-scratch recompute."""
    simulation = SoaSimulation(_config())
    result = simulation.run()
    assert result.final_round == 1000
    assert simulation.audit() == []


def test_same_seed_is_deterministic():
    first = run_simulation(_config(seed=11))
    second = run_simulation(_config(seed=11))
    assert first.to_dict() == second.to_dict()


def test_different_seeds_diverge():
    first = run_simulation(_config(seed=11))
    second = run_simulation(_config(seed=12))
    assert first.to_dict() != second.to_dict()


def test_observer_and_category_activity_present():
    """The shrunk workload still exercises the metric surfaces."""
    result = run_simulation(_config())
    assert result.metrics.total_repairs > 0
    assert result.peers_created >= 150
    assert result.deaths > 0
