"""The ISSUE 6 acceptance gate: ``abstract_soa`` is ``abstract``, faster.

The structure-of-arrays backend must be *metric-equivalent* to the
object-graph engine — not statistically similar: every preset, at every
seed, produces identical repair rates, loss rates and observer totals,
because both backends consume the same RNG streams in the same order.
A second invariant rides along from ISSUE 3: registering the new
fidelity must not perturb the serialized form (and therefore the cache
digest) of abstract-mode configs.
"""

from __future__ import annotations

import pytest

from repro.exec import config_digest
from repro.scenarios import available_scenarios, scenario_by_name
from repro.sim.config import DEFAULT_FIDELITY
from repro.sim.engine import run_simulation

#: Shrunk far enough that the full preset x seed grid stays in tier-1
#: time, large enough that churn, repairs and observer activity all
#: actually happen (the million_peers preset shrinks like any other —
#: equivalence is about trajectories, not scale).
POPULATION = 120
ROUNDS = 900

SEEDS = (0, 1, 2)


def _shrunk(name: str):
    return (
        scenario_by_name(name).with_population(POPULATION).with_rounds(ROUNDS)
    )


@pytest.mark.parametrize("name", available_scenarios())
@pytest.mark.parametrize("seed", SEEDS)
def test_every_preset_matches_abstract(name, seed):
    scenario = _shrunk(name).with_seed(seed)
    reference = run_simulation(scenario.with_fidelity("abstract").build())
    vectorized = run_simulation(scenario.with_fidelity("abstract_soa").build())

    assert vectorized.repair_rates() == reference.repair_rates()
    assert vectorized.loss_rates() == reference.loss_rates()
    assert vectorized.observer_totals() == reference.observer_totals()
    # The headline counters must agree too, not just the rates.
    assert vectorized.metrics.total_repairs == reference.metrics.total_repairs
    assert vectorized.metrics.total_losses == reference.metrics.total_losses
    assert vectorized.deaths == reference.deaths
    assert vectorized.peers_created == reference.peers_created


def test_full_result_dict_matches_on_paper_preset():
    """Beyond the headline metrics: the entire serialized result agrees.

    One preset suffices here (the grid above already covers the rest);
    this catches divergence in any series the coarse assertions miss.
    """
    scenario = _shrunk("paper").with_seed(7)
    reference = run_simulation(scenario.with_fidelity("abstract").build())
    vectorized = run_simulation(scenario.with_fidelity("abstract_soa").build())

    expected = reference.to_dict()
    actual = vectorized.to_dict()
    # The configs differ by construction (the fidelity knob itself).
    expected.pop("config"), actual.pop("config")
    assert actual == expected


class TestDigestInvariant:
    """ISSUE 3's cache contract survives the new backend."""

    @pytest.mark.parametrize("name", available_scenarios())
    def test_abstract_configs_omit_fidelity_keys(self, name):
        config = scenario_by_name(name).with_fidelity("abstract").build()
        data = config.to_dict()
        for key in ("fidelity", "link_profile", "round_seconds",
                    "archive_bytes", "fairness_factor"):
            assert key not in data

    def test_soa_config_digest_differs_from_abstract(self):
        scenario = _shrunk("paper")
        abstract = scenario.with_fidelity("abstract").build()
        soa = scenario.with_fidelity("abstract_soa").build()
        assert soa.to_dict()["fidelity"] == "abstract_soa"
        assert config_digest(soa) != config_digest(abstract)

    def test_abstract_digest_is_the_default_digest(self):
        """An explicitly-abstract config hashes like a default one."""
        scenario = _shrunk("paper")
        assert DEFAULT_FIDELITY == "abstract"
        assert config_digest(
            scenario.with_fidelity("abstract").build()
        ) == config_digest(scenario.build())
