"""Round-trip tests for config/metrics/result dict serialization.

These are the properties the sweep executor's process-pool transport
and on-disk cache rest on: ``to_dict -> from_dict`` preserves every
figure-1-4 series and counter, and the canonical JSON form is stable
across the round trip.
"""

import json

from repro.churn.profiles import PAPER_PROFILES, Profile
from repro.core.categories import CategoryScheme
from repro.exec import canonical_json
from repro.sim.config import ObserverSpec, SimulationConfig
from repro.sim.engine import SimulationResult, run_simulation
from repro.sim.metrics import MetricsCollector
from repro.sim.observers import scaled_observers


def run_small(observers=()):
    config = SimulationConfig.scaled(
        population=80,
        rounds=600,
        data_blocks=8,
        parity_blocks=8,
        seed=3,
        observers=observers,
    )
    return run_simulation(config)


def json_round_trip(payload):
    """Simulate the cache/process boundary: through real JSON text."""
    return json.loads(json.dumps(payload))


class TestConfigRoundTrip:
    def test_default_config(self):
        config = SimulationConfig()
        rebuilt = SimulationConfig.from_dict(
            json_round_trip(config.to_dict())
        )
        assert rebuilt == config

    def test_fully_loaded_config(self):
        config = SimulationConfig.scaled(
            population=120,
            rounds=900,
            data_blocks=8,
            parity_blocks=8,
            seed=11,
            observers=scaled_observers(0.05),
            grace_rounds=4,
            proactive_rate=0.001,
            adaptive_thresholds=True,
            warmup_rounds=10,
        )
        rebuilt = SimulationConfig.from_dict(
            json_round_trip(config.to_dict())
        )
        assert rebuilt == config
        assert canonical_json(rebuilt.to_dict()) == canonical_json(
            config.to_dict()
        )

    def test_none_seed_survives(self):
        config = SimulationConfig(seed=None)
        assert SimulationConfig.from_dict(config.to_dict()).seed is None

    def test_profile_round_trip(self):
        for profile in PAPER_PROFILES:
            assert Profile.from_dict(
                json_round_trip(profile.to_dict())
            ) == profile

    def test_category_scheme_round_trip(self):
        scheme = CategoryScheme().scaled(0.25)
        rebuilt = CategoryScheme.from_dict(json_round_trip(scheme.to_dict()))
        assert rebuilt.categories == scheme.categories

    def test_observer_spec_round_trip(self):
        spec = ObserverSpec("Elder", 2160)
        assert ObserverSpec.from_dict(json_round_trip(spec.to_dict())) == spec


class TestMetricsRoundTrip:
    def test_counters_preserved(self):
        metrics = run_small().metrics
        rebuilt = MetricsCollector.from_dict(
            json_round_trip(metrics.to_dict())
        )
        assert rebuilt.total_repairs == metrics.total_repairs
        assert rebuilt.total_losses == metrics.total_losses
        assert rebuilt.total_placements == metrics.total_placements
        assert rebuilt.starved_repairs == metrics.starved_repairs
        assert rebuilt.pool_examined == metrics.pool_examined
        assert rebuilt.by_category.keys() == metrics.by_category.keys()
        for name, counters in metrics.by_category.items():
            assert rebuilt.by_category[name] == counters

    def test_figure_series_preserved(self):
        metrics = run_small(observers=scaled_observers(0.05)).metrics
        rebuilt = MetricsCollector.from_dict(
            json_round_trip(metrics.to_dict())
        )
        # Figure 3: per-observer cumulative repair series.
        for spec_name in ("Elder", "Baby"):
            assert rebuilt.observer_series(spec_name) == metrics.observer_series(
                spec_name
            )
        # Figure 4: per-category loss series.
        for name in metrics.categories.names():
            assert rebuilt.category_loss_series(name) == (
                metrics.category_loss_series(name)
            )
            assert rebuilt.losses_per_peer_series(name) == (
                metrics.losses_per_peer_series(name)
            )
        # Figures 1/2: the rate denominators and rates.
        for name in metrics.categories.names():
            assert rebuilt.repair_rate_per_1000(name) == (
                metrics.repair_rate_per_1000(name)
            )
            assert rebuilt.loss_rate_per_1000(name) == (
                metrics.loss_rate_per_1000(name)
            )

    def test_observer_dicts_keep_defaultdict_behaviour(self):
        rebuilt = MetricsCollector.from_dict(
            json_round_trip(run_small().metrics.to_dict())
        )
        # Recording against an unseen observer must not raise.
        rebuilt.record_repair(0, 0.0, 1, observer_name="Fresh")
        assert rebuilt.observer_repairs["Fresh"] == 1


class TestResultRoundTrip:
    def test_canonical_json_stable_across_round_trip(self):
        result = run_small(observers=scaled_observers(0.05))
        first = canonical_json(result.to_dict())
        rebuilt = SimulationResult.from_dict(json.loads(first))
        assert canonical_json(rebuilt.to_dict()) == first

    def test_rates_preserved(self):
        result = run_small()
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt.repair_rates() == result.repair_rates()
        assert rebuilt.loss_rates() == result.loss_rates()
        assert rebuilt.observer_totals() == result.observer_totals()
        assert rebuilt.final_round == result.final_round
        assert rebuilt.peers_created == result.peers_created
        assert rebuilt.deaths == result.deaths

    def test_wall_clock_excluded_from_canonical_form(self):
        result = run_small()
        assert result.wall_clock_seconds > 0
        assert "wall_clock_seconds" not in result.to_dict()
        assert SimulationResult.from_dict(
            result.to_dict()
        ).wall_clock_seconds == 0.0
