"""Tests for result export helpers and observer utilities."""

import pytest

from repro.sim.config import PAPER_OBSERVERS, ObserverSpec, SimulationConfig
from repro.sim.engine import run_simulation
from repro.sim.observers import (
    build_observer_peer,
    observer_table,
    scaled_observers,
)
from repro.sim.trace import (
    category_loss_rows,
    observer_series_rows,
    rates_rows,
    result_summary,
    series_to_csv,
    threshold_sweep_rows,
)


@pytest.fixture(scope="module")
def result():
    config = SimulationConfig(
        population=60,
        rounds=500,
        data_blocks=8,
        parity_blocks=8,
        repair_threshold=10,
        quota=24,
        seed=2,
        observers=(ObserverSpec("Baby", 1),),
    )
    return run_simulation(config)


class TestObserverHelpers:
    def test_observer_table_wording(self):
        table = observer_table(PAPER_OBSERVERS)
        assert table["Elder"] == "3 month(s)"
        assert table["Senior"] == "1 month(s)"
        assert table["Adult"] == "1 week(s)"
        assert table["Teenager"] == "1 day(s)"
        assert table["Baby"] == "1 hour(s)"

    def test_scaled_observers_shrink(self):
        scaled = scaled_observers(0.5)
        by_name = {spec.name: spec.fixed_age for spec in scaled}
        assert by_name["Elder"] == 1080
        assert by_name["Baby"] == 1  # floored at one round

    def test_scaled_observers_validation(self):
        with pytest.raises(ValueError):
            scaled_observers(0)

    def test_build_observer_peer(self):
        peer = build_observer_peer(7, ObserverSpec("Senior", 720), join_round=0)
        assert peer.is_observer
        assert peer.fixed_age == 720
        assert peer.death_round is None
        assert peer.observer_name == "Senior"


class TestTraceExports:
    def test_result_summary_fields(self, result):
        summary = result_summary(result)
        assert summary["population"] == 60
        assert summary["k"] == 8
        assert summary["n"] == 16
        assert summary["total_repairs"] == result.metrics.total_repairs
        assert summary["wall_clock_seconds"] > 0

    def test_rates_rows_shape(self, result):
        rows = rates_rows(result)
        assert len(rows) == 4
        assert all(len(row) == 6 for row in rows)

    def test_series_to_csv(self):
        text = series_to_csv(["a", "b"], [[1, 2], [3, 4]])
        assert text == "a,b\n1,2\n3,4\n"

    def test_series_to_csv_validates(self):
        with pytest.raises(ValueError):
            series_to_csv(["a"], [[1, 2]])

    def test_observer_series_rows(self, result):
        rows = observer_series_rows(result, ["Baby"])
        assert rows, "sampled series must not be empty"
        assert all(len(row) == 2 for row in rows)
        # Cumulative: last >= first.
        assert rows[-1][1] >= rows[0][1]

    def test_category_loss_rows(self, result):
        rows = category_loss_rows(result)
        assert all(len(row) == 5 for row in rows)  # round + 4 categories

    def test_threshold_sweep_rows(self, result):
        header, rows = threshold_sweep_rows({10: result}, metric="repairs")
        assert header[0] == "threshold"
        assert rows[0][0] == 10
        assert len(rows[0]) == 5

    def test_threshold_sweep_rows_bad_metric(self, result):
        with pytest.raises(ValueError):
            threshold_sweep_rows({10: result}, metric="happiness")
