"""Integration tests for the simulation engine."""

import pytest

from repro.churn.profiles import Profile
from repro.sim.config import ObserverSpec, SimulationConfig
from repro.sim.engine import Simulation, run_simulation

#: A no-churn profile mix: everyone durable and always online.
CALM = (Profile("Calm", 1.0, None, 1.0, mean_online_session=1000.0),)


def tiny(**overrides):
    defaults = dict(
        population=80,
        rounds=600,
        data_blocks=8,
        parity_blocks=8,
        repair_threshold=10,
        quota=24,
        seed=3,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestDeterminism:
    def test_same_seed_identical_results(self):
        a = run_simulation(tiny())
        b = run_simulation(tiny())
        assert a.metrics.total_repairs == b.metrics.total_repairs
        assert a.metrics.total_losses == b.metrics.total_losses
        assert a.deaths == b.deaths
        assert a.metrics.rates_table() == b.metrics.rates_table()

    def test_different_seeds_diverge(self):
        a = run_simulation(tiny(seed=1))
        b = run_simulation(tiny(seed=2))
        assert (
            a.metrics.total_repairs != b.metrics.total_repairs
            or a.deaths != b.deaths
        )


class TestConsistency:
    def test_audit_clean_after_run(self):
        simulation = Simulation(tiny(rounds=1000))
        simulation.run()
        assert simulation.audit() == []

    def test_audit_clean_with_observers_and_grace(self):
        config = tiny(
            observers=(ObserverSpec("Baby", 1), ObserverSpec("Elder", 500)),
            grace_rounds=12,
        )
        simulation = Simulation(config)
        simulation.run()
        assert simulation.audit() == []

    def test_population_size_is_maintained(self):
        simulation = Simulation(tiny())
        result = simulation.run()
        assert len(simulation.population) == 80
        assert result.peers_created == 80 + result.deaths

    def test_quota_never_exceeded(self):
        simulation = Simulation(tiny(quota=12))
        simulation.run()
        for peer in simulation.population.peers.values():
            assert len(peer.hosted) <= 12


class TestPlacementAndRepair:
    def test_calm_network_places_everyone_and_never_repairs(self):
        config = tiny(profiles=CALM, rounds=300)
        simulation = Simulation(config)
        result = simulation.run()
        assert result.metrics.total_placements == 80
        assert result.metrics.total_repairs == 0
        assert result.metrics.total_losses == 0
        for peer in simulation.population.alive_normal_peers():
            assert peer.archive.placed
            assert peer.archive.visible == config.total_blocks

    def test_initial_placement_counts_once_per_peer(self):
        result = run_simulation(tiny(profiles=CALM, rounds=200))
        assert result.metrics.total_placements == 80

    def test_churny_network_repairs(self):
        result = run_simulation(tiny(rounds=1500))
        assert result.metrics.total_repairs > 0

    def test_losses_only_from_low_thresholds(self):
        """With a generous threshold, losses should be rare or absent;
        alive-block counts can never go below k without being recorded."""
        simulation = Simulation(tiny(rounds=1500, repair_threshold=12))
        result = simulation.run()
        for peer in simulation.population.alive_normal_peers():
            if peer.archive.placed:
                assert peer.archive.alive >= 0
        assert result.metrics.total_losses >= 0  # smoke: counter coherent

    def test_higher_threshold_means_more_repairs(self):
        low = run_simulation(tiny(rounds=1500, repair_threshold=9, seed=5))
        high = run_simulation(tiny(rounds=1500, repair_threshold=14, seed=5))
        assert high.metrics.total_repairs > low.metrics.total_repairs


class TestObservers:
    def observer_config(self, **overrides):
        return tiny(
            observers=(
                ObserverSpec("Baby", 1),
                ObserverSpec("Elder", 2160),
            ),
            rounds=1200,
            **overrides,
        )

    def test_observers_never_hold_blocks(self):
        simulation = Simulation(self.observer_config())
        simulation.run()
        for observer in simulation.population.observers():
            assert not observer.hosted
            assert not observer.hosted_free

    def test_observer_blocks_do_not_consume_quota(self):
        simulation = Simulation(self.observer_config(quota=16))
        simulation.run()
        for peer in simulation.population.peers.values():
            if peer.hosted_free:
                # hosted_free never contributes to the quota count.
                assert len(peer.hosted) <= 16

    def test_observer_repairs_recorded_separately(self):
        result = run_simulation(self.observer_config())
        totals = result.observer_totals()
        assert set(totals) <= {"Baby", "Elder"}
        # Observer repairs must not pollute the per-category counters:
        # category peer-round exposure counts only normal peers.
        assert result.metrics.total_repairs >= 0

    def test_baby_repairs_at_least_as_much_as_elder(self):
        # A wider code (n = 32) and an age cap the observer ages straddle
        # are needed for the stratification signal to rise above the
        # partner-placement luck of a small run (DESIGN.md section 5).
        config = SimulationConfig(
            population=150,
            rounds=2500,
            data_blocks=16,
            parity_blocks=16,
            repair_threshold=18,
            quota=48,
            age_cap=324,
            seed=3,
            observers=(ObserverSpec("Baby", 1), ObserverSpec("Elder", 324)),
        )
        result = run_simulation(config)
        totals = result.observer_totals()
        assert totals.get("Baby", 0) >= totals.get("Elder", 0)

    def test_observers_survive_whole_run(self):
        simulation = Simulation(self.observer_config())
        simulation.run()
        observers = list(simulation.population.observers())
        assert len(observers) == 2
        assert all(o.alive and o.online for o in observers)


class TestKnobs:
    def test_staggered_start(self):
        result = run_simulation(tiny(staggered_join_rounds=200, rounds=800))
        assert result.metrics.total_placements > 0

    def test_grace_period_reduces_regeneration(self):
        eager = run_simulation(tiny(rounds=1500, grace_rounds=0, seed=9))
        patient = run_simulation(tiny(rounds=1500, grace_rounds=48, seed=9))
        regenerated_eager = sum(
            c.regenerated_blocks for c in eager.metrics.by_category.values()
        )
        regenerated_patient = sum(
            c.regenerated_blocks for c in patient.metrics.by_category.values()
        )
        assert regenerated_patient <= regenerated_eager

    def test_proactive_rate_runs(self):
        result = run_simulation(tiny(rounds=600, proactive_rate=0.01))
        assert result.final_round == 600

    def test_uniform_acceptance_runs_clean(self):
        simulation = Simulation(tiny(acceptance_rule="uniform", rounds=800))
        simulation.run()
        assert simulation.audit() == []

    @pytest.mark.parametrize("strategy", ["age", "random", "availability", "oracle"])
    def test_all_strategies_run_clean(self, strategy):
        simulation = Simulation(
            tiny(selection_strategy=strategy, rounds=500)
        )
        simulation.run()
        assert simulation.audit() == []

    def test_warmup_excludes_early_events(self):
        full = run_simulation(tiny(rounds=1000, warmup_rounds=0, seed=4))
        warm = run_simulation(tiny(rounds=1000, warmup_rounds=500, seed=4))
        warm_counted = sum(c.repairs for c in warm.metrics.by_category.values())
        full_counted = sum(c.repairs for c in full.metrics.by_category.values())
        assert warm_counted <= full_counted
        # The raw totals are identical: same seed, same trajectory.
        assert warm.metrics.total_repairs == full.metrics.total_repairs


class TestCheckRescheduling:
    """An earlier check must replace a pending later one (ISSUE 3).

    Before the fix, ``_schedule_check`` deduplicated purely on "a check
    is pending", so a block loss wanting a check at round 5 was silently
    swallowed by e.g. a placement retry already queued for round 12.
    """

    def test_earlier_check_cancels_and_replaces_later_one(self):
        simulation = Simulation(tiny())
        peer = simulation._spawn_peer(0)
        # Forget the join-time check so we control the pending state.
        peer.check_scheduled = None
        peer.check_handle = None

        simulation._schedule_check(peer, 12)
        later_handle = peer.check_handle
        assert peer.check_scheduled == 12

        # A later request is deduplicated away ...
        simulation._schedule_check(peer, 20)
        assert peer.check_scheduled == 12
        assert peer.check_handle is later_handle

        # ... but an earlier one cancels and replaces the pending check.
        simulation._schedule_check(peer, 5)
        assert peer.check_scheduled == 5
        assert later_handle.cancelled
        assert peer.check_handle is not later_handle
        assert not peer.check_handle.cancelled

    def test_check_state_cleared_when_check_runs(self):
        simulation = Simulation(tiny(rounds=200))
        simulation.run()
        for peer in simulation.population.alive_normal_peers():
            if peer.check_scheduled is None:
                assert peer.check_handle is None


class TestResultApi:
    def test_rates_cover_all_categories(self, tiny_config):
        result = run_simulation(tiny_config)
        assert set(result.repair_rates()) == set(tiny_config.categories.names())
        assert set(result.loss_rates()) == set(tiny_config.categories.names())

    def test_wall_clock_positive(self):
        result = run_simulation(tiny(rounds=100))
        assert result.wall_clock_seconds > 0
