"""Behavioural tests of the loss and blocked-repair semantics.

DESIGN.md section 5: an archive is *lost* when fewer than k blocks
remain on live peers; a repair that sees fewer than k *online* blocks is
*blocked* and retried.  These tests force each regime with crafted
churn profiles.
"""

import pytest

from repro.churn.profiles import Profile
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation, run_simulation

#: Everyone dies within days: block loss is guaranteed to outrun repair
#: at a tight threshold.
DOOMED = (
    Profile("Doomed", 1.0, (24, 96), 0.9, mean_online_session=48.0),
)

#: Stable but very flaky: nobody ever leaves, yet peers are offline
#: two-thirds of the time — repairs get blocked, data is never lost.
FLAKY = (
    Profile("Flaky", 1.0, None, 0.34, mean_online_session=6.0),
)


class TestLossRegime:
    def test_doomed_population_loses_archives(self):
        config = SimulationConfig(
            population=60,
            rounds=1500,
            data_blocks=8,
            parity_blocks=8,
            repair_threshold=9,
            quota=24,
            profiles=DOOMED,
            seed=1,
        )
        result = run_simulation(config)
        assert result.metrics.total_losses > 0
        # Losses hit Newcomers: nobody in a doomed population ages out
        # of the first category.
        assert result.metrics.by_category["Newcomers"].losses == (
            sum(c.losses for c in result.metrics.by_category.values())
        )

    def test_lost_archives_are_reinjected(self):
        config = SimulationConfig(
            population=60,
            rounds=1500,
            data_blocks=8,
            parity_blocks=8,
            repair_threshold=9,
            quota=24,
            profiles=DOOMED,
            seed=1,
        )
        result = run_simulation(config)
        # Every loss is followed by a fresh placement (plus the initial
        # one per created peer), so placements strictly exceed peers.
        assert result.metrics.total_placements > result.peers_created * 0.5
        assert result.metrics.total_losses > 0

    def test_loss_requires_alive_below_k(self):
        """With immortal peers, no archive can ever be lost, no matter
        how flaky their sessions are."""
        config = SimulationConfig(
            population=60,
            rounds=2000,
            data_blocks=8,
            parity_blocks=8,
            repair_threshold=12,
            quota=24,
            profiles=FLAKY,
            seed=2,
        )
        result = run_simulation(config)
        assert result.metrics.total_losses == 0


class TestBlockedRegime:
    def test_flaky_population_blocks_but_recovers(self):
        config = SimulationConfig(
            population=60,
            rounds=2000,
            data_blocks=8,
            parity_blocks=8,
            repair_threshold=12,
            quota=24,
            profiles=FLAKY,
            seed=2,
        )
        simulation = Simulation(config)
        result = simulation.run()
        blocked = sum(c.blocked for c in result.metrics.by_category.values())
        # With 34% availability the expected visible count of a 16-block
        # archive is ~5.4 < k=8: repairs block routinely...
        assert blocked > 0
        # ...but the data is safe and the state stays exact.
        assert result.metrics.total_losses == 0
        assert simulation.audit() == []

    def test_blocked_counts_attributed_to_archives(self):
        config = SimulationConfig(
            population=40,
            rounds=1200,
            data_blocks=8,
            parity_blocks=8,
            repair_threshold=12,
            quota=24,
            profiles=FLAKY,
            seed=3,
        )
        simulation = Simulation(config)
        result = simulation.run()
        per_archive = sum(
            p.archive.blocked_count
            for p in simulation.population.alive_normal_peers()
        )
        global_blocked = sum(
            c.blocked for c in result.metrics.by_category.values()
        )
        # Archive counters of surviving peers cannot exceed the global
        # total (dead peers' counters are discarded with them).
        assert per_archive <= global_blocked + 1e-9


@pytest.mark.slow
class TestThresholdExtremes:
    @pytest.mark.parametrize("threshold", [9, 16])
    def test_extreme_thresholds_run_clean(self, threshold):
        config = SimulationConfig(
            population=50,
            rounds=800,
            data_blocks=8,
            parity_blocks=8,
            repair_threshold=threshold,
            quota=24,
            seed=4,
        )
        simulation = Simulation(config)
        simulation.run()
        assert simulation.audit() == []

    def test_threshold_equal_to_n_repairs_constantly(self):
        low = run_simulation(SimulationConfig(
            population=50, rounds=800, data_blocks=8, parity_blocks=8,
            repair_threshold=9, quota=24, seed=4,
        ))
        max_threshold = run_simulation(SimulationConfig(
            population=50, rounds=800, data_blocks=8, parity_blocks=8,
            repair_threshold=16, quota=24, seed=4,
        ))
        assert max_threshold.metrics.total_repairs > low.metrics.total_repairs
