"""Soak lane: the full equivalence contract at real default scale.

The tier-1 equivalence grid (``test_soa_equivalence.py``) shrinks every
preset to seconds; this module runs the actual ISSUE 3/10 acceptance
workload — the ``paper`` preset at the ``default`` experiment scale,
800 peers over 14 000 rounds — on both engines and requires the entire
serialized result to agree, per seed.  It is the evidence base for the
ROADMAP question "can ``abstract_soa`` become the default fidelity":
a green soak lane means the swarm backend is indistinguishable from
the reference engine on the exact configuration the figures use.

Marked both ``slow`` and ``soak``: the run costs minutes, so only the
dedicated CI soak lane (``-m soak``) executes it.
"""

from __future__ import annotations

import pytest

from repro.scenarios import scenario_by_name
from repro.sim.engine import run_simulation

pytestmark = [pytest.mark.slow, pytest.mark.soak]

POPULATION = 800
ROUNDS = 14_000

SEEDS = (0, 1, 2)


def _default_scale(seed: int):
    return (
        scenario_by_name("paper")
        .with_population(POPULATION)
        .with_rounds(ROUNDS)
        .with_seed(seed)
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_full_result_matches_at_default_scale(seed):
    scenario = _default_scale(seed)
    reference = run_simulation(scenario.with_fidelity("abstract").build())
    vectorized = run_simulation(scenario.with_fidelity("abstract_soa").build())

    expected = reference.to_dict()
    actual = vectorized.to_dict()
    # The configs differ by construction (the fidelity knob itself).
    expected.pop("config"), actual.pop("config")
    assert actual == expected
    # The workload must actually exercise the machinery being vouched
    # for: churn, repairs, losses-or-not, observer activity.
    assert vectorized.metrics.total_repairs > 0
    assert vectorized.deaths > 0
