"""Protocol-backend behaviour under network impairment (PR 8).

The unit layer (``tests/net/test_impairment.py``) pins the sampler and
transport semantics; these tests exercise the full retry machinery
inside :class:`repro.sim.protocol.ProtocolSimulation`:

* scripted drop schedules produce the exact counters they script;
* an exhausted retry budget degrades gracefully (``gave_up``) instead
  of wedging the maintenance loop;
* churn during a retry window cancels cleanly (audit verifies no retry
  state outlives its owner);
* impaired runs stay byte-identical across all sweep-executor backends;
* the clean profile leaves the metrics payload untouched.
"""

import dataclasses

import pytest

from repro.exec.cache import canonical_json
from repro.net.impairment import (
    IMPAIRMENT_PROFILES,
    ScriptedImpairment,
    drop_schedule,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import run_simulation
from repro.sim.protocol import ProtocolSimulation


def impaired_config(profile="loss30_delay50ms_jitter5ms", **overrides):
    defaults = dict(
        population=80,
        rounds=500,
        data_blocks=8,
        parity_blocks=8,
        seed=3,
    )
    defaults.update(overrides)
    base = SimulationConfig.scaled(**defaults)
    return dataclasses.replace(
        base, fidelity="protocol", impairment_profile=profile
    )


@pytest.fixture
def scripted_profile():
    """Register a scripted profile for the test, then remove it."""

    def _register(name, script):
        profile = ScriptedImpairment(name=name, script=script)
        IMPAIRMENT_PROFILES.register(name, profile)
        registered.append(name)
        return profile

    registered = []
    yield _register
    for name in registered:
        IMPAIRMENT_PROFILES.unregister(name)


class TestScriptedSchedules:
    def test_every_exchange_dropped_gives_up_gracefully(
        self, scripted_profile
    ):
        """A black-hole link: nothing places, yet the run completes."""
        scripted_profile("test-blackhole", drop_schedule(True))
        simulation = ProtocolSimulation(
            impaired_config("test-blackhole", rounds=200)
        )
        result = simulation.run()
        assert simulation.audit() == []
        protocol = result.metrics.protocol
        assert protocol["drops"] > 0
        assert protocol["retries"] > 0
        assert protocol["gave_up"] > 0
        # Every recruitment round-trip was lost before any recipient
        # effect, so no archive ever placed and none could be repaired.
        assert result.metrics.total_placements == 0
        assert result.metrics.total_repairs == 0
        assert protocol.get("transfers_started", 0) == 0

    def test_drop_counter_matches_the_transport(self, scripted_profile):
        """The metrics counter and the transport counter agree exactly."""
        scripted_profile("test-every-third", drop_schedule(True, False, False))
        simulation = ProtocolSimulation(
            impaired_config("test-every-third", rounds=300)
        )
        result = simulation.run()
        assert simulation.audit() == []
        protocol = result.metrics.protocol
        assert protocol["drops"] == simulation.transport.dropped_messages
        assert protocol["drops"] > 0
        # Two delivered exchanges per drop: the loop still makes progress.
        assert result.metrics.total_placements > 0

    def test_budget_exhaustion_reenqueues_the_operation(
        self, scripted_profile
    ):
        """Giving up is a deferral, not a deletion: checks keep firing."""
        scripted_profile("test-blackhole-budget", drop_schedule(True))
        config = dataclasses.replace(
            impaired_config("test-blackhole-budget", rounds=150),
            retry_budget=1,
        )
        simulation = ProtocolSimulation(config)
        result = simulation.run()
        assert simulation.audit() == []
        protocol = result.metrics.protocol
        # With a budget of one, each cycle is attempt + one retry, so
        # the loop gives up once per retry and keeps re-enqueueing.
        assert protocol["gave_up"] >= protocol["retries"] // 2
        assert protocol["gave_up"] > 1
        # Retry state may straddle the horizon cut, but only for owners
        # still alive to use it (the audit enforces the same hygiene).
        for owner_id in simulation._attempts:
            assert simulation.population.peers[owner_id].alive


class TestRetryUnderChurn:
    def test_mid_retry_churn_cancels_cleanly(self):
        """Heavy loss + churn: peers die inside their backoff windows."""
        simulation = ProtocolSimulation(
            impaired_config(rounds=800, seed=7)
        )
        result = simulation.run()
        # The audit's retry-hygiene check: no _attempts entry may
        # reference a dead or departed owner.
        assert simulation.audit() == []
        protocol = result.metrics.protocol
        assert protocol["drops"] > 0
        assert protocol["retries"] > 0
        assert result.deaths > 0

    def test_departed_owner_forgets_retry_state(self, scripted_profile):
        scripted_profile("test-blackhole-churn", drop_schedule(True))
        simulation = ProtocolSimulation(
            impaired_config("test-blackhole-churn", rounds=800, seed=7)
        )
        result = simulation.run()
        assert result.deaths > 0
        assert simulation.audit() == []
        for owner_id in simulation._attempts:
            peer = simulation.population.peers.get(owner_id)
            assert peer is not None and peer.alive


class TestImpairedDeterminism:
    def test_same_seed_byte_identical(self):
        first = run_simulation(impaired_config())
        second = run_simulation(impaired_config())
        assert canonical_json(first.to_dict()) == canonical_json(
            second.to_dict()
        )

    def test_clean_profile_leaves_the_payload_untouched(self):
        """R002 by construction: no impairment counters unless impaired."""
        result = run_simulation(impaired_config("clean"))
        protocol = result.metrics.protocol
        for counter in ("drops", "retries", "timeouts", "gave_up",
                        "impairment_delay_seconds"):
            assert counter not in protocol
        assert result.metrics.total_repairs > 0

    def test_clean_profile_matches_pre_impairment_trajectory(self):
        """The clean profile consumes zero draws from the new stream."""
        clean = run_simulation(impaired_config("clean"))
        baseline = run_simulation(
            dataclasses.replace(
                impaired_config("clean"), retry_budget=7
            )
        )
        # retry knobs are inert on a clean link: same bytes out.
        assert canonical_json(clean.metrics.to_dict()) == canonical_json(
            baseline.metrics.to_dict()
        )


@pytest.mark.slow
class TestImpairedExecutorEquivalence:
    """Invariant 2 holds with the impairment layer active."""

    def test_serial_process_distributed_identical(self, tmp_path):
        from repro.exec import ExperimentSpec, ResultCache, SweepExecutor

        config = impaired_config(rounds=400)

        def spec():
            return ExperimentSpec(
                name="impaired-equivalence",
                build=lambda params: config,
                seeds=(0, 1),
            )

        serial = SweepExecutor(backend="serial").run(spec())
        process = SweepExecutor(workers=2, backend="process").run(spec())
        distributed = SweepExecutor(
            backend="distributed", cache=ResultCache(tmp_path)
        ).run(spec())
        expected = [canonical_json(r.to_dict()) for r in serial.results]
        assert [
            canonical_json(r.to_dict()) for r in process.results
        ] == expected
        assert [
            canonical_json(r.to_dict()) for r in distributed.results
        ] == expected
        # The impaired cells actually exercised the machinery.
        assert all(
            r.metrics.protocol.get("drops", 0) > 0 for r in serial.results
        )
