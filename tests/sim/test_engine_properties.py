"""Property tests of the simulation engine: state stays exact under any knobs.

The engine's incremental counters (visible/alive per archive, quota per
holder, bidirectional holder links) are recomputed from scratch by
``Simulation.audit``; these tests drive randomized configurations through
short runs and require a spotless audit plus a handful of global
conservation laws.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.config import ObserverSpec, SimulationConfig
from repro.sim.engine import Simulation

knob_strategy = st.fixed_dictionaries(
    {
        "population": st.integers(min_value=30, max_value=90),
        "rounds": st.integers(min_value=200, max_value=700),
        "data_blocks": st.sampled_from([4, 8]),
        "seed": st.integers(min_value=0, max_value=10_000),
        "grace_rounds": st.sampled_from([0, 12, 48]),
        "acceptance_rule": st.sampled_from(["age", "uniform"]),
        "selection_strategy": st.sampled_from(
            ["age", "random", "availability", "oracle"]
        ),
        "adaptive_thresholds": st.booleans(),
        "proactive": st.sampled_from([0.0, 0.02]),
        "staggered": st.sampled_from([0, 100]),
        "with_observers": st.booleans(),
    }
)


def build_config(knobs) -> SimulationConfig:
    k = knobs["data_blocks"]
    observers = ()
    if knobs["with_observers"]:
        observers = (ObserverSpec("Baby", 1), ObserverSpec("Elder", 500))
    return SimulationConfig(
        population=knobs["population"],
        rounds=knobs["rounds"],
        data_blocks=k,
        parity_blocks=k,
        repair_threshold=k + max(k // 4, 1),
        quota=3 * k,
        seed=knobs["seed"],
        grace_rounds=knobs["grace_rounds"],
        acceptance_rule=knobs["acceptance_rule"],
        selection_strategy=knobs["selection_strategy"],
        adaptive_thresholds=knobs["adaptive_thresholds"],
        proactive_rate=knobs["proactive"],
        staggered_join_rounds=knobs["staggered"],
        observers=observers,
    )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(knobs=knob_strategy)
def test_audit_clean_for_any_configuration(knobs):
    simulation = Simulation(build_config(knobs))
    simulation.run()
    assert simulation.audit() == []


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(knobs=knob_strategy)
def test_conservation_laws(knobs):
    config = build_config(knobs)
    simulation = Simulation(config)
    result = simulation.run()

    # Population is maintained: alive normal peers == configured size.
    assert len(simulation.population) == config.population
    # Every death spawned exactly one replacement.
    assert result.peers_created == config.population + result.deaths

    # Block conservation: holder links match hosted sets, split by kind.
    hosted_normal = sum(
        len(p.hosted) for p in simulation.population.peers.values() if p.alive
    )
    hosted_free = sum(
        len(p.hosted_free)
        for p in simulation.population.peers.values()
        if p.alive
    )
    held_normal = held_free = 0
    for peer in simulation.population.peers.values():
        if not peer.alive:
            continue
        if peer.is_observer:
            held_free += len(peer.archive.holders)
        else:
            held_normal += len(peer.archive.holders)
    assert hosted_normal == held_normal
    assert hosted_free == held_free

    # No archive ever exceeds n holders, and counters stay in range.
    for peer in simulation.population.peers.values():
        if not peer.alive:
            continue
        archive = peer.archive
        assert len(archive.holders) <= config.total_blocks
        assert 0 <= archive.visible <= archive.alive <= len(archive.holders)


@pytest.mark.parametrize("seed", range(4))
def test_metrics_totals_match_archive_counters(seed):
    """Per-archive repair counters of *surviving* peers never exceed the
    global metric total (dead peers' counters are discarded)."""
    config = SimulationConfig(
        population=60,
        rounds=900,
        data_blocks=8,
        parity_blocks=8,
        repair_threshold=10,
        quota=24,
        seed=seed,
    )
    simulation = Simulation(config)
    result = simulation.run()
    surviving_repairs = sum(
        p.archive.repair_count
        for p in simulation.population.alive_normal_peers()
    )
    assert surviving_repairs <= result.metrics.total_repairs
