"""Tests for the simulation configuration."""

import pytest

from repro.core.policy import RepairPolicy
from repro.sim.config import PAPER_OBSERVERS, ObserverSpec, SimulationConfig


class TestValidation:
    def test_defaults_are_valid(self):
        config = SimulationConfig()
        assert isinstance(config.policy(), RepairPolicy)

    @pytest.mark.parametrize("field,value", [
        ("population", 0),
        ("rounds", 0),
        ("quota", -1),
        ("sample_interval", 0),
        ("pool_factor", 0.5),
        ("max_examined_factor", 0),
        ("grace_rounds", -1),
        ("staggered_join_rounds", -1),
        ("proactive_rate", -0.1),
        ("acceptance_rule", "telepathy"),
        ("warmup_rounds", 10_000),
    ])
    def test_invalid_fields(self, field, value):
        with pytest.raises(ValueError):
            SimulationConfig(**{field: value})

    def test_threshold_outside_kn_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(data_blocks=16, parity_blocks=16, repair_threshold=40)


class TestFactories:
    def test_paper_parameters(self):
        """Pin section 4.1: 25000 peers, k=m=128, quota=384, 50000 rounds."""
        config = SimulationConfig.paper()
        assert config.population == 25_000
        assert config.rounds == 50_000
        assert config.data_blocks == 128
        assert config.parity_blocks == 128
        assert config.total_blocks == 256
        assert config.quota == 384
        assert config.repair_threshold == 148

    def test_paper_threshold_override(self):
        assert SimulationConfig.paper(repair_threshold=132).repair_threshold == 132

    def test_scaled_preserves_ratios(self):
        config = SimulationConfig.scaled(
            paper_threshold=148, data_blocks=16, parity_blocks=16
        )
        assert config.repair_threshold == 18
        assert config.quota == 48  # 1.5 x n, like 384 = 1.5 x 256

    def test_scaled_quota_override(self):
        config = SimulationConfig.scaled(quota=99)
        assert config.quota == 99

    def test_scaled_forwards_overrides(self):
        config = SimulationConfig.scaled(selection_strategy="random")
        assert config.selection_strategy == "random"


class TestCopies:
    def test_with_threshold(self):
        config = SimulationConfig()
        updated = config.with_threshold(20)
        assert updated.repair_threshold == 20
        assert updated.population == config.population

    def test_with_seed(self):
        assert SimulationConfig().with_seed(9).seed == 9


class TestObserverSpecs:
    def test_paper_observers(self):
        """Pin the observer table: 3 months, 1 month, 1 week, 1 day, 1 hour."""
        by_name = {spec.name: spec.fixed_age for spec in PAPER_OBSERVERS}
        assert by_name == {
            "Elder": 90 * 24,
            "Senior": 30 * 24,
            "Adult": 7 * 24,
            "Teenager": 24,
            "Baby": 1,
        }

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            ObserverSpec("X", -1)
