"""Tests for the simulation configuration."""

import pytest

from repro.core.policy import RepairPolicy
from repro.sim.config import PAPER_OBSERVERS, ObserverSpec, SimulationConfig


class TestValidation:
    def test_defaults_are_valid(self):
        config = SimulationConfig()
        assert isinstance(config.policy(), RepairPolicy)

    @pytest.mark.parametrize("field,value", [
        ("population", 0),
        ("rounds", 0),
        ("quota", -1),
        ("quota", 0),
        ("sample_interval", 0),
        ("pool_factor", 0.5),
        ("max_examined_factor", 0),
        ("grace_rounds", -1),
        ("staggered_join_rounds", -1),
        ("proactive_rate", -0.1),
        ("acceptance_rule", "telepathy"),
        ("selection_strategy", "fortune-teller"),
        ("warmup_rounds", 10_000),
    ])
    def test_invalid_fields(self, field, value):
        with pytest.raises(ValueError):
            SimulationConfig(**{field: value})

    def test_threshold_outside_kn_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(data_blocks=16, parity_blocks=16, repair_threshold=40)

    def test_threshold_above_n_message_is_actionable(self):
        with pytest.raises(ValueError) as excinfo:
            SimulationConfig(data_blocks=16, parity_blocks=16, repair_threshold=40)
        message = str(excinfo.value)
        assert "repair_threshold=40" in message
        assert "32" in message  # names the violated bound k + m

    def test_threshold_below_k_message_is_actionable(self):
        with pytest.raises(ValueError) as excinfo:
            SimulationConfig(data_blocks=16, parity_blocks=16, repair_threshold=10)
        assert "repair_threshold=10" in str(excinfo.value)

    def test_zero_quota_message_is_actionable(self):
        with pytest.raises(ValueError) as excinfo:
            SimulationConfig(quota=0)
        assert "quota" in str(excinfo.value)

    def test_unknown_component_error_lists_choices(self):
        with pytest.raises(ValueError) as excinfo:
            SimulationConfig(selection_strategy="agee")
        message = str(excinfo.value)
        assert "age" in message and "random" in message


class TestRegistryRoundTrips:
    """Registered component names survive to_dict/from_dict untouched."""

    def test_every_selection_strategy_round_trips(self):
        from repro.core.selection import SELECTION_STRATEGIES

        for name in SELECTION_STRATEGIES.names():
            config = SimulationConfig(selection_strategy=name)
            rebuilt = SimulationConfig.from_dict(config.to_dict())
            assert rebuilt == config
            assert rebuilt.selection_strategy == name

    def test_every_acceptance_rule_round_trips(self):
        from repro.core.acceptance import ACCEPTANCE_RULES

        for name in ACCEPTANCE_RULES.names():
            config = SimulationConfig(acceptance_rule=name)
            rebuilt = SimulationConfig.from_dict(config.to_dict())
            assert rebuilt == config
            assert rebuilt.acceptance_rule == name

    def test_registered_churn_mix_round_trips(self):
        from repro.churn.profiles import CHURN_MIXES

        for name in CHURN_MIXES.names():
            config = SimulationConfig(profiles=CHURN_MIXES.get(name))
            rebuilt = SimulationConfig.from_dict(config.to_dict())
            assert rebuilt.profiles == config.profiles

    def test_serialized_field_set_is_stable(self):
        """The cache key's content: exactly the PR-1 field set, no more."""
        assert set(SimulationConfig().to_dict()) == {
            "population", "rounds", "data_blocks", "parity_blocks",
            "repair_threshold", "quota", "age_cap", "profiles",
            "categories", "selection_strategy", "acceptance_rule",
            "observers", "seed", "pool_factor", "max_examined_factor",
            "sample_interval", "warmup_rounds", "grace_rounds",
            "staggered_join_rounds", "proactive_rate", "adaptive_thresholds",
        }


class TestFactories:
    def test_paper_parameters(self):
        """Pin section 4.1: 25000 peers, k=m=128, quota=384, 50000 rounds."""
        config = SimulationConfig.paper()
        assert config.population == 25_000
        assert config.rounds == 50_000
        assert config.data_blocks == 128
        assert config.parity_blocks == 128
        assert config.total_blocks == 256
        assert config.quota == 384
        assert config.repair_threshold == 148

    def test_paper_threshold_override(self):
        assert SimulationConfig.paper(repair_threshold=132).repair_threshold == 132

    def test_scaled_preserves_ratios(self):
        config = SimulationConfig.scaled(
            paper_threshold=148, data_blocks=16, parity_blocks=16
        )
        assert config.repair_threshold == 18
        assert config.quota == 48  # 1.5 x n, like 384 = 1.5 x 256

    def test_scaled_quota_override(self):
        config = SimulationConfig.scaled(quota=99)
        assert config.quota == 99

    def test_scaled_forwards_overrides(self):
        config = SimulationConfig.scaled(selection_strategy="random")
        assert config.selection_strategy == "random"


class TestCopies:
    def test_with_threshold(self):
        config = SimulationConfig()
        updated = config.with_threshold(20)
        assert updated.repair_threshold == 20
        assert updated.population == config.population

    def test_with_seed(self):
        assert SimulationConfig().with_seed(9).seed == 9


class TestObserverSpecs:
    def test_paper_observers(self):
        """Pin the observer table: 3 months, 1 month, 1 week, 1 day, 1 hour."""
        by_name = {spec.name: spec.fixed_age for spec in PAPER_OBSERVERS}
        assert by_name == {
            "Elder": 90 * 24,
            "Senior": 30 * 24,
            "Adult": 7 * 24,
            "Teenager": 24,
            "Baby": 1,
        }

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            ObserverSpec("X", -1)
