"""The ISSUE 10 acceptance tests for the round-batched toggle kernel.

Two layers: unit tests of the event queue's dense toggle lane (the
bulk-drain API the kernel consumes), and a hypothesis property driving
randomized micro-populations through the batched kernel — both the
scalar-loop branch and the vectorised branch, forced via the
``_VECTOR_POPULATION`` cut-over — and requiring state-for-state
agreement with the object-graph reference engine across interleaved
toggles, deaths and staggered joins.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.config import ObserverSpec, SimulationConfig
from repro.sim.engine import run_simulation
from repro.sim.engine_soa import SoaSimulation
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.fidelity import simulation_for
from repro.sim.rng import seeded_generator


def _queue(seed: int = 0) -> EventQueue:
    return EventQueue(seeded_generator(seed))


class TestDenseToggleLane:
    """The queue API contract the batched kernel is built on."""

    def test_sentinel_delivered_before_generic_events(self):
        queue = _queue()
        queue.schedule(3, Event(EventKind.REPAIR_CHECK, peer_id=9))
        queue.schedule_toggle(3, 7)
        queue.schedule_toggle(3, 2)
        now, event = queue.pop()
        assert (now, event.kind) == (3, EventKind.TOGGLE_BATCH)
        assert queue.pop_round_batch().tolist() == [2, 7]
        now, event = queue.pop()
        assert (now, event.kind) == (3, EventKind.REPAIR_CHECK)
        assert queue.pop() is None

    def test_batch_ids_ascending_regardless_of_filing_order(self):
        queue = _queue()
        for peer_id in (5, 1, 4, 2, 3):
            queue.schedule_toggle(1, peer_id)
        assert queue.pop() == (1, Event(EventKind.TOGGLE_BATCH))
        assert queue.pop_round_batch().tolist() == [1, 2, 3, 4, 5]

    def test_pop_round_batch_without_pending_batch_is_empty(self):
        queue = _queue()
        batch = queue.pop_round_batch()
        assert isinstance(batch, np.ndarray)
        assert len(batch) == 0

    def test_bulk_filing_matches_scalar_filing(self):
        """``schedule_toggle_batch`` takes the argsort path above 32
        events and must land every id in the same bucket as one-by-one
        filing."""
        rng = np.random.default_rng(11)
        rounds = rng.integers(1, 9, size=120)
        peer_ids = np.arange(120)
        scalar, bulk = _queue(1), _queue(1)
        for round_number, peer_id in zip(rounds.tolist(), peer_ids.tolist()):
            scalar.schedule_toggle(round_number, peer_id)
        bulk.schedule_toggle_batch(rounds, peer_ids)
        assert len(scalar) == len(bulk) == 120
        while True:
            a, b = scalar.pop(), bulk.pop()
            assert a == b
            if a is None:
                break
            assert scalar.pop_round_batch().tolist() == (
                bulk.pop_round_batch().tolist()
            )

    def test_toggle_into_executing_round_rejected(self):
        queue = _queue()
        queue.schedule_toggle(2, 1)
        assert queue.pop() == (2, Event(EventKind.TOGGLE_BATCH))
        with pytest.raises(ValueError):
            queue.schedule_toggle(2, 8)
        with pytest.raises(ValueError):
            queue.schedule_toggle(-1, 8)

    def test_toggle_only_round_stays_live(self):
        """A round holding nothing but dense toggles must survive the
        dead-bucket purge (toggles carry no cancellation accounting)."""
        queue = _queue()
        queue.schedule_toggle(5, 3)
        assert queue.peek_round() == 5
        assert len(queue) == 1 and bool(queue)
        assert queue.pop_until(5) == (5, Event(EventKind.TOGGLE_BATCH))
        assert queue.pop_round_batch().tolist() == [3]
        assert len(queue) == 0 and not queue
        assert queue.pop() is None

    def test_cancelled_generics_do_not_kill_a_toggle_round(self):
        queue = _queue()
        handle = queue.schedule(4, Event(EventKind.REPAIR_CHECK, peer_id=1))
        queue.schedule_toggle(4, 6)
        queue.cancel(handle)
        assert queue.peek_round() == 4
        assert queue.pop() == (4, Event(EventKind.TOGGLE_BATCH))
        assert queue.pop_round_batch().tolist() == [6]
        assert queue.pop() is None

    def test_pop_until_holds_future_batches(self):
        queue = _queue()
        queue.schedule_toggle(10, 2)
        assert queue.pop_until(9) is None
        assert len(queue) == 1
        assert queue.pop_until(10) == (10, Event(EventKind.TOGGLE_BATCH))
        assert queue.pop_round_batch().tolist() == [2]


knob_strategy = st.fixed_dictionaries(
    {
        "population": st.integers(min_value=30, max_value=80),
        "rounds": st.integers(min_value=200, max_value=600),
        "data_blocks": st.sampled_from([4, 8]),
        "seed": st.integers(min_value=0, max_value=10_000),
        "acceptance_rule": st.sampled_from(["age", "uniform"]),
        "adaptive_thresholds": st.booleans(),
        "staggered": st.sampled_from([0, 120]),
        "with_observers": st.booleans(),
    }
)


def build_config(knobs) -> SimulationConfig:
    k = knobs["data_blocks"]
    observers = ()
    if knobs["with_observers"]:
        observers = (ObserverSpec("Baby", 1), ObserverSpec("Elder", 400))
    return SimulationConfig(
        population=knobs["population"],
        rounds=knobs["rounds"],
        data_blocks=k,
        parity_blocks=k,
        repair_threshold=k + max(k // 4, 1),
        quota=3 * k,
        seed=knobs["seed"],
        acceptance_rule=knobs["acceptance_rule"],
        adaptive_thresholds=knobs["adaptive_thresholds"],
        staggered_join_rounds=knobs["staggered"],
        observers=observers,
    )


class TestBatchedKernelProperty:
    """Randomized runs: batched kernel == scalar reference, both branches.

    ``_VECTOR_POPULATION`` is the cut-over between the kernel's scalar
    loops and its vectorised array passes (which also switch the state
    tables to numpy columns, the reverse index to the CSR slab and the
    online pool to an array).  Forcing it to 1 runs micro-populations
    through the swarm-scale branch, so both code paths face the same
    randomized churn.
    """

    @pytest.mark.parametrize(
        "vector_population",
        [None, 1],
        ids=["scalar-kernel", "vector-kernel"],
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(knobs=knob_strategy)
    def test_matches_scalar_reference_state_for_state(
        self, vector_population, knobs
    ):
        config = build_config(knobs)
        reference = run_simulation(
            dataclasses.replace(config, fidelity="abstract")
        )
        original = SoaSimulation._VECTOR_POPULATION
        if vector_population is not None:
            SoaSimulation._VECTOR_POPULATION = vector_population
        try:
            simulation = simulation_for(
                dataclasses.replace(config, fidelity="abstract_soa")
            )
            assert simulation._vector_kernel is (vector_population is not None)
            result = simulation.run()
            # State-for-state: every incremental column recomputed from
            # scratch must agree with itself...
            assert simulation.audit() == []
        finally:
            SoaSimulation._VECTOR_POPULATION = original
        # ... and every serialized metric with the reference engine.
        expected = reference.to_dict()
        actual = result.to_dict()
        expected.pop("config"), actual.pop("config")
        assert actual == expected
