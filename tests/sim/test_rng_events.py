"""Tests for the RNG streams, batched draw buffers and the event queue."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.rng import BatchedDraws, STREAM_NAMES, RngStreams


class TestRngStreams:
    def test_all_streams_exist(self):
        streams = RngStreams(0)
        for name in STREAM_NAMES:
            assert streams.stream(name) is not None

    def test_attribute_access(self):
        streams = RngStreams(0)
        assert streams.sessions is streams.stream("sessions")

    def test_unknown_stream(self):
        with pytest.raises(ValueError):
            RngStreams(0).stream("nope")
        with pytest.raises(AttributeError):
            RngStreams(0).nope

    def test_same_seed_same_draws(self):
        a, b = RngStreams(5), RngStreams(5)
        assert a.lifetimes.random(10).tolist() == b.lifetimes.random(10).tolist()

    def test_different_seeds_differ(self):
        a, b = RngStreams(5), RngStreams(6)
        assert a.lifetimes.random(10).tolist() != b.lifetimes.random(10).tolist()

    def test_streams_are_independent(self):
        """Consuming one stream must not shift another."""
        a, b = RngStreams(5), RngStreams(5)
        a.sessions.random(1000)  # burn only in a
        assert a.lifetimes.random(5).tolist() == b.lifetimes.random(5).tolist()

    def test_spawned_generators_deterministic(self):
        a, b = RngStreams(5), RngStreams(5)
        assert a.spawn().random(5).tolist() == b.spawn().random(5).tolist()

    def test_none_seed_accepted(self):
        assert RngStreams(None).sessions.random() is not None


class TestEventQueue:
    @pytest.fixture
    def queue(self):
        return EventQueue(np.random.default_rng(0))

    def test_pop_in_round_order(self, queue):
        queue.schedule(5, Event(EventKind.DEATH, 1))
        queue.schedule(1, Event(EventKind.JOIN))
        queue.schedule(3, Event(EventKind.TOGGLE, 2))
        rounds = [queue.pop()[0] for _ in range(3)]
        assert rounds == [1, 3, 5]

    def test_same_round_order_is_randomised(self):
        orders = set()
        for seed in range(8):
            queue = EventQueue(np.random.default_rng(seed))
            for peer in range(6):
                queue.schedule(1, Event(EventKind.TOGGLE, peer))
            order = tuple(queue.pop()[1].peer_id for _ in range(6))
            orders.add(order)
        assert len(orders) > 1

    def test_cancel_skips_event(self, queue):
        keep = queue.schedule(1, Event(EventKind.JOIN))
        drop = queue.schedule(1, Event(EventKind.DEATH, 9))
        queue.cancel(drop)
        assert len(queue) == 1
        round_number, event = queue.pop()
        assert event.kind == EventKind.JOIN
        assert queue.pop() is None
        del keep

    def test_cancel_twice_is_safe(self, queue):
        entry = queue.schedule(1, Event(EventKind.JOIN))
        queue.cancel(entry)
        queue.cancel(entry)
        assert len(queue) == 0

    def test_cancel_after_pop_is_a_noop(self, queue):
        """Cancelling an executed handle must not corrupt accounting."""
        executed = queue.schedule(1, Event(EventKind.JOIN))
        live = queue.schedule(1, Event(EventKind.DEATH, 3))
        first = queue.pop()
        handle = executed if first[1].kind == EventKind.JOIN else live
        queue.cancel(handle)  # already popped: no-op
        assert len(queue) == 1
        assert queue.pop() is not None
        assert queue.pop() is None
        assert len(queue) == 0

    def test_pop_empty(self, queue):
        assert queue.pop() is None
        assert not queue

    def test_peek_round(self, queue):
        assert queue.peek_round() is None
        queue.schedule(7, Event(EventKind.SAMPLE))
        assert queue.peek_round() == 7

    def test_peek_skips_cancelled(self, queue):
        entry = queue.schedule(2, Event(EventKind.SAMPLE))
        queue.schedule(9, Event(EventKind.JOIN))
        queue.cancel(entry)
        assert queue.peek_round() == 9

    def test_drain_until_respects_bound(self, queue):
        for round_number in (1, 5, 10, 15):
            queue.schedule(round_number, Event(EventKind.SAMPLE))
        drained = list(queue.drain_until(10))
        assert [r for r, _ in drained] == [1, 5, 10]
        assert queue.peek_round() == 15

    def test_drain_processes_events_scheduled_during_drain(self, queue):
        queue.schedule(1, Event(EventKind.JOIN))
        seen = []
        for round_number, event in queue.drain_until(10):
            seen.append((round_number, event.kind))
            if event.kind == EventKind.JOIN and round_number == 1:
                queue.schedule(1, Event(EventKind.REPAIR_CHECK, 1))
                queue.schedule(4, Event(EventKind.DEATH, 1))
        kinds = [kind for _, kind in seen]
        assert EventKind.REPAIR_CHECK in kinds
        assert EventKind.DEATH in kinds

    def test_negative_round_rejected(self, queue):
        with pytest.raises(ValueError):
            queue.schedule(-1, Event(EventKind.JOIN))

    def test_len_tracks_live_events(self, queue):
        entries = [queue.schedule(1, Event(EventKind.JOIN)) for _ in range(5)]
        queue.cancel(entries[0])
        assert len(queue) == 4

    def test_schedule_into_active_round_lands_in_it(self, queue):
        """An event scheduled for the round being drained still fires."""
        queue.schedule(3, Event(EventKind.JOIN))
        queue.schedule(5, Event(EventKind.SAMPLE))
        round_number, _ = queue.pop()
        assert round_number == 3
        queue.schedule(3, Event(EventKind.DEATH, 7))
        round_number, event = queue.pop()
        assert round_number == 3
        assert event.kind == EventKind.DEATH

    def test_earlier_round_scheduled_mid_drain_runs_first(self, queue):
        """Scheduling behind the active round preempts its remainder."""
        for peer in range(4):
            queue.schedule(9, Event(EventKind.TOGGLE, peer))
        queue.pop()  # activates round 9
        queue.schedule(2, Event(EventKind.JOIN))
        round_number, event = queue.pop()
        assert round_number == 2
        assert event.kind == EventKind.JOIN
        remaining = [queue.pop()[0] for _ in range(3)]
        assert remaining == [9, 9, 9]
        assert queue.pop() is None


class TestBatchedDraws:
    def test_uniforms_in_range_and_deterministic(self):
        a = BatchedDraws(np.random.default_rng(3), block=7)
        b = BatchedDraws(np.random.default_rng(3), block=7)
        draws = [a.next_uniform() for _ in range(50)]
        assert draws == [b.next_uniform() for _ in range(50)]
        assert all(0.0 <= value < 1.0 for value in draws)

    def test_block_size_does_not_change_the_sequence(self):
        small = BatchedDraws(np.random.default_rng(3), block=2)
        large = BatchedDraws(np.random.default_rng(3), block=512)
        assert [small.next_uniform() for _ in range(40)] == [
            large.next_uniform() for _ in range(40)
        ]

    def test_integers_in_range(self):
        draws = BatchedDraws(np.random.default_rng(4), block=16)
        values = [draws.next_integer(13) for _ in range(500)]
        assert all(0 <= value < 13 for value in values)
        assert set(values) == set(range(13))  # every bin reachable

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            BatchedDraws(np.random.default_rng(0), block=0)
        with pytest.raises(ValueError):
            BatchedDraws(np.random.default_rng(0)).next_integer(0)


class TestCalendarQueueProperties:
    """Hypothesis-driven invariants of the calendar/bucket queue."""

    @settings(max_examples=120, deadline=None)
    @given(
        rounds=st.lists(st.integers(min_value=0, max_value=20), max_size=60),
        cancel_every=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_pop_order_and_cancellation(self, rounds, cancel_every, seed):
        queue = EventQueue(np.random.default_rng(seed))
        handles = [
            queue.schedule(round_number, Event(EventKind.TOGGLE, index))
            for index, round_number in enumerate(rounds)
        ]
        cancelled = {
            handle.event.peer_id
            for index, handle in enumerate(handles)
            if index % cancel_every == 0
        }
        for index, handle in enumerate(handles):
            if index % cancel_every == 0:
                queue.cancel(handle)
        assert len(queue) == len(rounds) - len(cancelled)

        drained = []
        while True:
            item = queue.pop()
            if item is None:
                break
            drained.append(item)
        # Every live event fires exactly once, none of the cancelled do.
        assert sorted(e.peer_id for _, e in drained) == sorted(
            i for i in range(len(rounds)) if i not in cancelled
        )
        # Rounds come out non-decreasing and each event in its own round.
        popped_rounds = [r for r, _ in drained]
        assert popped_rounds == sorted(popped_rounds)
        for round_number, event in drained:
            assert rounds[event.peer_id] == round_number
        assert len(queue) == 0

    @settings(max_examples=60, deadline=None)
    @given(
        rounds=st.lists(
            st.integers(min_value=0, max_value=8), min_size=1, max_size=40
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_intra_round_shuffle_is_deterministic_by_seed(self, rounds, seed):
        def drain(queue_seed):
            queue = EventQueue(np.random.default_rng(queue_seed))
            for index, round_number in enumerate(rounds):
                queue.schedule(round_number, Event(EventKind.TOGGLE, index))
            return list(queue.drain_until(10))

        assert drain(seed) == drain(seed)
