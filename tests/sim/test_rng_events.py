"""Tests for the RNG streams and the event queue."""

import numpy as np
import pytest

from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.rng import STREAM_NAMES, RngStreams


class TestRngStreams:
    def test_all_streams_exist(self):
        streams = RngStreams(0)
        for name in STREAM_NAMES:
            assert streams.stream(name) is not None

    def test_attribute_access(self):
        streams = RngStreams(0)
        assert streams.sessions is streams.stream("sessions")

    def test_unknown_stream(self):
        with pytest.raises(ValueError):
            RngStreams(0).stream("nope")
        with pytest.raises(AttributeError):
            RngStreams(0).nope

    def test_same_seed_same_draws(self):
        a, b = RngStreams(5), RngStreams(5)
        assert a.lifetimes.random(10).tolist() == b.lifetimes.random(10).tolist()

    def test_different_seeds_differ(self):
        a, b = RngStreams(5), RngStreams(6)
        assert a.lifetimes.random(10).tolist() != b.lifetimes.random(10).tolist()

    def test_streams_are_independent(self):
        """Consuming one stream must not shift another."""
        a, b = RngStreams(5), RngStreams(5)
        a.sessions.random(1000)  # burn only in a
        assert a.lifetimes.random(5).tolist() == b.lifetimes.random(5).tolist()

    def test_spawned_generators_deterministic(self):
        a, b = RngStreams(5), RngStreams(5)
        assert a.spawn().random(5).tolist() == b.spawn().random(5).tolist()

    def test_none_seed_accepted(self):
        assert RngStreams(None).sessions.random() is not None


class TestEventQueue:
    @pytest.fixture
    def queue(self):
        return EventQueue(np.random.default_rng(0))

    def test_pop_in_round_order(self, queue):
        queue.schedule(5, Event(EventKind.DEATH, 1))
        queue.schedule(1, Event(EventKind.JOIN))
        queue.schedule(3, Event(EventKind.TOGGLE, 2))
        rounds = [queue.pop()[0] for _ in range(3)]
        assert rounds == [1, 3, 5]

    def test_same_round_order_is_randomised(self):
        orders = set()
        for seed in range(8):
            queue = EventQueue(np.random.default_rng(seed))
            for peer in range(6):
                queue.schedule(1, Event(EventKind.TOGGLE, peer))
            order = tuple(queue.pop()[1].peer_id for _ in range(6))
            orders.add(order)
        assert len(orders) > 1

    def test_cancel_skips_event(self, queue):
        keep = queue.schedule(1, Event(EventKind.JOIN))
        drop = queue.schedule(1, Event(EventKind.DEATH, 9))
        queue.cancel(drop)
        assert len(queue) == 1
        round_number, event = queue.pop()
        assert event.kind == EventKind.JOIN
        assert queue.pop() is None
        del keep

    def test_cancel_twice_is_safe(self, queue):
        entry = queue.schedule(1, Event(EventKind.JOIN))
        queue.cancel(entry)
        queue.cancel(entry)
        assert len(queue) == 0

    def test_pop_empty(self, queue):
        assert queue.pop() is None
        assert not queue

    def test_peek_round(self, queue):
        assert queue.peek_round() is None
        queue.schedule(7, Event(EventKind.SAMPLE))
        assert queue.peek_round() == 7

    def test_peek_skips_cancelled(self, queue):
        entry = queue.schedule(2, Event(EventKind.SAMPLE))
        queue.schedule(9, Event(EventKind.JOIN))
        queue.cancel(entry)
        assert queue.peek_round() == 9

    def test_drain_until_respects_bound(self, queue):
        for round_number in (1, 5, 10, 15):
            queue.schedule(round_number, Event(EventKind.SAMPLE))
        drained = list(queue.drain_until(10))
        assert [r for r, _ in drained] == [1, 5, 10]
        assert queue.peek_round() == 15

    def test_drain_processes_events_scheduled_during_drain(self, queue):
        queue.schedule(1, Event(EventKind.JOIN))
        seen = []
        for round_number, event in queue.drain_until(10):
            seen.append((round_number, event.kind))
            if event.kind == EventKind.JOIN and round_number == 1:
                queue.schedule(1, Event(EventKind.REPAIR_CHECK, 1))
                queue.schedule(4, Event(EventKind.DEATH, 1))
        kinds = [kind for _, kind in seen]
        assert EventKind.REPAIR_CHECK in kinds
        assert EventKind.DEATH in kinds

    def test_negative_round_rejected(self, queue):
        with pytest.raises(ValueError):
            queue.schedule(-1, Event(EventKind.JOIN))

    def test_len_tracks_live_events(self, queue):
        entries = [queue.schedule(1, Event(EventKind.JOIN)) for _ in range(5)]
        queue.cancel(entries[0])
        assert len(queue) == 4
