"""Property tests for :class:`SampleableSet` against a reference model.

The swap-pop/index-map construction must behave exactly like a plain
``set`` under any interleaving of adds and discards, while sampling only
ever returns current members.  Hypothesis drives random operation
sequences; the reference model is the built-in ``set``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.network import SampleableSet
from repro.sim.rng import BatchedDraws

#: One operation: (op, value).  ``sample`` ignores its value.
operations = st.lists(
    st.tuples(
        st.sampled_from(["add", "discard", "sample"]),
        st.integers(min_value=0, max_value=40),
    ),
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(ops=operations, seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_matches_reference_set_model(ops, seed):
    rng = np.random.default_rng(seed)
    draws = BatchedDraws(np.random.default_rng(seed + 1), block=16)
    sampleable = SampleableSet()
    model = set()
    for op, value in ops:
        if op == "add":
            sampleable.add(value)
            model.add(value)
        elif op == "discard":
            sampleable.discard(value)
            model.discard(value)
        else:
            picked = sampleable.sample(rng)
            picked_batched = sampleable.sample_with(draws)
            if model:
                assert picked in model
                assert picked_batched in model
            else:
                assert picked is None
                assert picked_batched is None
        # Invariants after every step.
        assert len(sampleable) == len(model)
        for member in model:
            assert member in sampleable
        assert set(sampleable) == model


@settings(max_examples=50, deadline=None)
@given(members=st.sets(st.integers(min_value=0, max_value=30), min_size=1))
def test_every_member_is_reachable_by_sampling(members):
    """Sampling must not systematically exclude any member."""
    sampleable = SampleableSet()
    for member in members:
        sampleable.add(member)
    rng = np.random.default_rng(0)
    seen = {sampleable.sample(rng) for _ in range(40 * len(members))}
    assert seen == members


def test_add_discard_idempotence():
    sampleable = SampleableSet()
    sampleable.add(1)
    sampleable.add(1)
    assert len(sampleable) == 1
    sampleable.discard(1)
    sampleable.discard(1)
    assert len(sampleable) == 0
    assert sampleable.sample(np.random.default_rng(0)) is None
