"""Tests for the baseline package: proactive estimation and comparison."""

import pytest

from repro.baselines.comparison import compare_strategies, comparison_rows
from repro.baselines.proactive import estimate_churn, measured_churn
from repro.churn.profiles import PAPER_PROFILES, Profile
from repro.sim.config import SimulationConfig


class TestEstimateChurn:
    def test_durable_only_population_never_churns(self):
        durable = (Profile("D", 1.0, None, 0.9),)
        estimate = estimate_churn(durable, blocks_per_archive=16)
        assert estimate.departure_rate_per_peer == 0.0
        assert estimate.block_loss_rate_per_archive == 0.0

    def test_paper_mix_rate_is_positive_and_small(self):
        estimate = estimate_churn(PAPER_PROFILES, blocks_per_archive=256)
        assert 0 < estimate.departure_rate_per_peer < 0.01
        assert estimate.block_loss_rate_per_archive == pytest.approx(
            estimate.departure_rate_per_peer * 256
        )

    def test_erratic_dominates_the_rate(self):
        # Erratic peers (mean 2 months) churn ~10x faster than stable ones.
        erratic_only = (Profile("E", 1.0, (720, 2160), 0.33),)
        stable_only = (Profile("S", 1.0, (13140, 30660), 0.87),)
        fast = estimate_churn(erratic_only, 16).departure_rate_per_peer
        slow = estimate_churn(stable_only, 16).departure_rate_per_peer
        assert fast > 10 * slow

    def test_recommended_rate_scales_with_safety(self):
        estimate = estimate_churn(PAPER_PROFILES, 16)
        assert estimate.recommended_proactive_rate(2.0) == pytest.approx(
            2 * estimate.block_loss_rate_per_archive
        )
        with pytest.raises(ValueError):
            estimate.recommended_proactive_rate(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_churn(PAPER_PROFILES, 0)


class TestMeasuredChurn:
    def test_from_simulation_counters(self):
        estimate = measured_churn(deaths=50, peer_rounds=100_000, blocks_per_archive=16)
        assert estimate.departure_rate_per_peer == pytest.approx(0.0005)
        assert estimate.block_loss_rate_per_archive == pytest.approx(0.008)

    def test_validation(self):
        with pytest.raises(ValueError):
            measured_churn(1, 0, 16)
        with pytest.raises(ValueError):
            measured_churn(1, 10, 0)


class TestCompareStrategies:
    @pytest.fixture(scope="class")
    def outcomes(self):
        config = SimulationConfig(
            population=70,
            rounds=700,
            data_blocks=8,
            parity_blocks=8,
            repair_threshold=10,
            quota=24,
            seed=0,
        )
        return compare_strategies(
            config, strategies=("age", "random"), seeds=(0,)
        )

    def test_one_outcome_per_strategy(self, outcomes):
        assert [o.strategy for o in outcomes] == ["age", "random"]

    def test_rates_present_for_all_categories(self, outcomes):
        for outcome in outcomes:
            assert set(outcome.repair_rates) == {
                "Newcomers", "Young peers", "Old peers", "Elder peers",
            }

    def test_comparison_rows_shape(self, outcomes):
        rows = comparison_rows(outcomes)
        assert len(rows) == 2
        assert rows[0][0] == "age"
        assert all(len(row) == 5 for row in rows)

    def test_unknown_strategy_rejected(self):
        config = SimulationConfig(population=10, rounds=10)
        with pytest.raises(ValueError):
            compare_strategies(config, strategies=("psychic",), seeds=(0,))

    def test_empty_seeds_rejected(self):
        config = SimulationConfig(population=10, rounds=10)
        with pytest.raises(ValueError):
            compare_strategies(config, strategies=("age",), seeds=())
