"""Every module in the package must import cleanly and be documented."""

import importlib
import pkgutil

import pytest

import repro


def _all_module_names():
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module.name)
    return names


@pytest.mark.parametrize("name", _all_module_names())
def test_module_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} is missing a module docstring"


def test_public_symbols_are_documented():
    """Every name re-exported by a package __init__ has a docstring."""
    undocumented = []
    for package_name in (
        "repro.core", "repro.sim", "repro.churn", "repro.erasure",
        "repro.net", "repro.backup", "repro.analysis", "repro.baselines",
    ):
        package = importlib.import_module(package_name)
        for symbol in getattr(package, "__all__", []):
            value = getattr(package, symbol)
            if callable(value) and not getattr(value, "__doc__", None):
                undocumented.append(f"{package_name}.{symbol}")
    assert not undocumented, undocumented
