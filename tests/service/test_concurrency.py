"""Service soak tests: concurrent clients, quotas, worker death.

The ISSUE's service-grade bar: 16 threads hammering submit/poll on
overlapping specs must not duplicate compute beyond benign lease
races, per-client quotas must actually emit 429s under burst, and a
worker that dies mid-job must have its job stolen and completed.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exec import config_digest
from repro.exec.distributed import LeaseDirectory
from repro.scenarios import spec_from_payload
from repro.service import jobs as J
from repro.service.client import QuotaExceededError

pytestmark = pytest.mark.slow

#: Threads in the hammer tests (the ISSUE's figure).
HAMMER_THREADS = 16


def unique_digests(payloads) -> set:
    digests = set()
    for payload in payloads:
        for cell in spec_from_payload(payload).cells():
            digests.add(config_digest(cell.config))
    return digests


class TestConcurrentClients:
    def test_hammer_no_duplicate_compute(
        self, make_live, tiny_payload, serial_bytes
    ):
        """16 threads, 4 overlapping specs: every cell simulated once.

        Each thread submits one of four payloads (so four threads race
        on every spec), polls to completion and checks its bytes against
        the serial executor.  The distributed substrate's cell leases
        must collapse the overlap: total simulated cells equals the
        number of unique digests (a tiny slack covers the benign race
        where a lease expires at the exact moment its result publishes).
        """
        live = make_live(workers=2)
        payloads = [tiny_payload(seeds=[seed]) for seed in range(4)]
        expected = [serial_bytes(payload) for payload in payloads]
        failures = []
        barrier = threading.Barrier(HAMMER_THREADS)

        def hammer(index: int) -> None:
            payload = payloads[index % len(payloads)]
            client = live.client(f"hammer-{index}")
            barrier.wait(timeout=30)
            try:
                record = client.submit_and_wait(payload, timeout=120)
                wire = client.raw_result(record["job_id"])
                if wire != expected[index % len(payloads)]:
                    failures.append(f"thread {index}: bytes diverged")
            except Exception as error:  # noqa: BLE001 — collected below
                failures.append(f"thread {index}: {type(error).__name__}: {error}")

        threads = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(HAMMER_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=150)
        assert not failures, failures

        cells = unique_digests(payloads)
        metrics = live.service.metrics_payload()
        simulated = metrics["cells"]["simulated"]
        assert len(cells) <= simulated <= len(cells) + 2
        # 16 submissions of 4 distinct jobs: 4 created, 12 deduplicated.
        assert metrics["jobs"]["submitted"] == len(payloads)
        assert metrics["jobs"]["duplicate"] == HAMMER_THREADS - len(payloads)
        assert metrics["jobs"]["failed"] == 0
        assert metrics["queue_depth"] == 0

    def test_hot_cache_hammer_is_all_cache_hits(
        self, make_live, tiny_payload
    ):
        """Once warm, a second hammer simulates nothing at all."""
        live = make_live(workers=2)
        payload = tiny_payload(seeds=[11])
        live.client("warm").submit_and_wait(payload, timeout=120)
        before = live.service.metrics_payload()["cells"]["simulated"]

        failures = []

        def resubmit(index: int) -> None:
            try:
                record = live.client(f"re-{index}").submit(payload)
                if record["state"] != "done":
                    failures.append(f"thread {index}: state={record['state']}")
            except Exception as error:  # noqa: BLE001
                failures.append(f"thread {index}: {error}")

        threads = [
            threading.Thread(target=resubmit, args=(index,))
            for index in range(HAMMER_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures
        after = live.service.metrics_payload()["cells"]["simulated"]
        assert after == before  # zero new compute


class TestQuotas:
    def test_burst_emits_429(self, make_live, tiny_payload):
        """A bursting client is throttled with a real HTTP 429."""
        live = make_live(quota_capacity=2.0, quota_refill=2.0)
        client = live.client("bursty")
        payload = tiny_payload(seeds=[21])
        throttled = None
        for _ in range(6):  # burst capacity is 2; this must trip
            try:
                client.submit(payload)
            except QuotaExceededError as error:
                throttled = error
                break
        assert throttled is not None, "burst never hit the quota"
        assert throttled.retry_after > 0
        metrics = live.service.metrics_payload()
        assert metrics["requests"]["throttled"] >= 1
        kinds = [event["event"] for event in live.event_log()]
        assert "request_throttled" in kinds
        # Quotas are per client: an idle client is not throttled.
        record = live.client("patient").submit(payload)
        assert record["state"] in ("queued", "leased", "done")

    def test_submit_and_wait_rides_out_the_quota(
        self, make_live, tiny_payload
    ):
        """The client's retry loop converts 429s into a slow success."""
        live = make_live(quota_capacity=1.0, quota_refill=4.0)
        client = live.client("steady")
        for seed in (31, 32, 33):
            record = client.submit_and_wait(
                tiny_payload(seeds=[seed]), timeout=120
            )
            assert record["state"] == "done"
        assert live.service.metrics_payload()["requests"]["throttled"] >= 1


class TestWorkerDeath:
    def test_dead_workers_job_is_stolen_and_completes(
        self, make_live, tiny_payload
    ):
        """A job leased by a crashed worker is stolen, then finished.

        The crash is staged exactly as it happens in production: the
        job record says ``leased`` and a job lease exists on disk, but
        its owner will never heartbeat again.  Once the lease TTL
        lapses, a standing worker must steal the lease, requeue the
        job through the legal ``leased -> queued -> leased`` edges and
        run it to ``done``.
        """
        live = make_live(start_workers=False, lease_ttl=2.0)
        service = live.service
        client = live.client("mourner")
        record = client.submit(tiny_payload(seeds=[41]))
        job_id = record["job_id"]
        assert record["state"] == "queued"

        # The zombie claims the job with a short lease and "crashes"
        # (never heartbeats, never releases).  The lease is still
        # healthy when the fleet starts, so startup recovery leaves the
        # job alone — only the runtime steal path may take it, and only
        # once the heartbeat has been silent past the TTL.
        zombie = LeaseDirectory(
            service.job_lease_root, worker_id="zombie", ttl=0.75
        )
        assert zombie.try_acquire(job_id)
        service.store.transition(job_id, J.LEASED, worker="zombie")
        assert client.status(job_id)["state"] == "leased"

        service.start()
        time.sleep(0.2)  # fleet is up well before the lease expires
        assert client.status(job_id)["state"] == "leased"
        assert service.metrics_payload()["jobs"]["stolen"] == 0
        final = client.wait(job_id, timeout=120)
        assert final["state"] == "done"
        assert final["worker"] != "zombie"

        metrics = service.metrics_payload()
        assert metrics["jobs"]["stolen"] >= 1
        assert metrics["jobs"]["completed"] >= 1
        kinds = [event["event"] for event in live.event_log()]
        assert "job_stolen" in kinds
        assert "job_completed" in kinds
        # The stolen job's results are real: the bytes come back.
        assert client.raw_result(job_id)

    def test_healthy_lease_is_not_stolen(self, make_live, tiny_payload):
        """A heartbeating owner keeps its job: no steal, no duplicate."""
        live = make_live(start_workers=False, lease_ttl=5.0)
        service = live.service
        client = live.client("holder")
        record = client.submit(tiny_payload(seeds=[51]))
        job_id = record["job_id"]

        holder = LeaseDirectory(
            service.job_lease_root, worker_id="holder", ttl=5.0
        )
        assert holder.try_acquire(job_id)
        service.store.transition(job_id, J.LEASED, worker="holder")
        try:
            service.start()
            time.sleep(0.5)  # give workers time to (wrongly) pounce
            assert client.status(job_id)["state"] == "leased"
            assert service.metrics_payload()["jobs"]["stolen"] == 0
        finally:
            # The holder finishes gracefully: requeue and release so a
            # standing worker can drain the job for real.
            service.store.transition(job_id, J.QUEUED)
            holder.release(job_id)
        final = client.wait(job_id, timeout=120)
        assert final["state"] == "done"
