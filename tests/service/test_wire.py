"""Wire-format validation: JSON submissions -> experiment specs."""

from __future__ import annotations

import pytest

from repro.exec import config_digest
from repro.scenarios import (
    Scenario,
    SpecValidationError,
    scenario_by_name,
    scenario_payload,
    spec_from_payload,
)
from repro.experiments.common import scale_by_name


class TestSpecFromPayload:
    def test_minimal_scenario_payload(self):
        spec = spec_from_payload({"scenario": "paper"})
        assert spec.name == "service:paper"
        assert spec.seeds == (0,)
        assert spec.cell_count == 1

    def test_matches_cli_resolution_pipeline(self):
        """The payload pipeline and the CLI flags build equal configs.

        Digest equality is the strongest possible form: a service
        submission and the equivalent ``repro-experiments run`` share
        cache entries.
        """
        payload = {
            "scenario": "flash_crowd",
            "scale": "quick",
            "population": 90,
            "rounds": 400,
            "fidelity": "abstract",
            "seeds": [3],
        }
        spec = spec_from_payload(payload)
        wire_config = spec.cells()[0].config
        scale = scale_by_name("quick")
        cli_config = (
            scenario_by_name("flash_crowd")
            .with_population(scale.population)
            .with_rounds(scale.rounds)
            .with_population(90)
            .with_rounds(400)
            .with_fidelity("abstract")
            .build()
            .with_seed(3)
        )
        assert config_digest(wire_config) == config_digest(cli_config)

    def test_explicit_config_document(self):
        config = Scenario.scaled(population=50, rounds=100).build()
        spec = spec_from_payload({"config": config.to_dict(), "seeds": [1]})
        assert spec.cells()[0].config == config.with_seed(1)

    def test_overrides_escape_hatch(self):
        spec = spec_from_payload(
            {"scenario": "paper", "overrides": {"quota": 64}}
        )
        assert spec.cells()[0].config.quota == 64

    def test_threshold_and_quota_knobs(self):
        spec = spec_from_payload(
            {"scenario": "paper", "threshold": 20, "quota": 100}
        )
        config = spec.cells()[0].config
        assert config.repair_threshold == 20
        assert config.quota == 100

    def test_seeds_expand_cells(self):
        spec = spec_from_payload({"scenario": "paper", "seeds": [0, 1, 2]})
        assert spec.cell_count == 3
        assert [cell.seed for cell in spec.cells()] == [0, 1, 2]


class TestValidationErrors:
    def test_non_object_payload(self):
        with pytest.raises(SpecValidationError, match="JSON object"):
            spec_from_payload([1, 2, 3])

    def test_unknown_key_lists_allowed(self):
        with pytest.raises(SpecValidationError) as excinfo:
            spec_from_payload({"scenario": "paper", "popsize": 10})
        message = str(excinfo.value)
        assert "popsize" in message
        assert "population" in message  # the allowed-keys table

    def test_scenario_and_config_are_exclusive(self):
        with pytest.raises(SpecValidationError, match="exactly one"):
            spec_from_payload({"scenario": "paper", "config": {}})
        with pytest.raises(SpecValidationError, match="exactly one"):
            spec_from_payload({"seeds": [0]})

    def test_unknown_scenario_passes_did_you_mean(self):
        with pytest.raises(SpecValidationError, match="did you mean"):
            spec_from_payload({"scenario": "papper"})

    def test_unknown_scale(self):
        with pytest.raises(SpecValidationError, match="scale"):
            spec_from_payload({"scenario": "paper", "scale": "huge"})

    def test_unknown_fidelity_names_field(self):
        with pytest.raises(SpecValidationError, match="fidelity"):
            spec_from_payload({"scenario": "paper", "fidelity": "quantum"})

    def test_bad_population_type(self):
        with pytest.raises(SpecValidationError, match="population"):
            spec_from_payload({"scenario": "paper", "population": "many"})
        with pytest.raises(SpecValidationError, match="population"):
            spec_from_payload({"scenario": "paper", "population": True})

    def test_bad_seeds(self):
        with pytest.raises(SpecValidationError, match="seeds"):
            spec_from_payload({"scenario": "paper", "seeds": []})
        with pytest.raises(SpecValidationError, match="seeds"):
            spec_from_payload({"scenario": "paper", "seeds": ["zero"]})

    def test_bad_overrides_field(self):
        with pytest.raises(SpecValidationError, match="overrides"):
            spec_from_payload(
                {"scenario": "paper", "overrides": {"not_a_field": 1}}
            )

    def test_invalid_built_config_surfaces(self):
        with pytest.raises(SpecValidationError, match="invalid"):
            spec_from_payload(
                {"scenario": "paper", "overrides": {"population": -5}}
            )

    def test_malformed_config_document(self):
        with pytest.raises(SpecValidationError, match="config"):
            spec_from_payload({"config": {"population": 100}})


class TestScenarioPayloadHelper:
    def test_builds_valid_payloads(self):
        payload = scenario_payload("paper", scale="quick", seeds=[0, 1])
        assert payload["scenario"] == "paper"
        assert spec_from_payload(payload).cell_count == 2

    def test_rejects_invalid_client_side(self):
        with pytest.raises(SpecValidationError):
            scenario_payload("paper", bogus=1)
