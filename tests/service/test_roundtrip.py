"""End-to-end service roundtrip: the ISSUE-3 invariant on the wire.

The repo's core guarantee is that serial, process-pool and distributed
executions of one spec are byte-identical.  These tests extend it one
layer up: a sweep submitted over HTTP to a live server, drained by the
standing worker fleet and fetched back through the client is
byte-for-byte the canonical JSON a serial ``SweepExecutor`` produces
for the same payload.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import spec_from_payload
from repro.service.client import ServiceError

#: The satellite's headline case: the paper preset at quick scale.
PAPER_QUICK = {"scenario": "paper", "scale": "quick", "seeds": [0]}


class TestRoundtrip:
    def test_paper_quick_roundtrip_is_byte_identical(
        self, live_service, serial_bytes
    ):
        client = live_service.client("roundtrip")
        record = client.submit_and_wait(PAPER_QUICK, timeout=300)
        assert record["state"] == "done"
        wire = client.raw_result(record["job_id"])
        assert wire == serial_bytes(PAPER_QUICK)

    def test_decoded_results_align_with_cells(
        self, live_service, tiny_payload
    ):
        payload = tiny_payload(seeds=[0, 1])
        client = live_service.client("align")
        record = client.submit_and_wait(payload, timeout=120)
        results = client.result(record["job_id"])
        spec = spec_from_payload(payload)
        assert len(results) == spec.cell_count == 2
        # Cell order is seed order for a gridless spec.
        seeds = [result["config"]["seed"] for result in results]
        assert seeds == [0, 1]

    def test_hot_cache_submission_is_done_immediately(
        self, live_service, tiny_payload, serial_bytes
    ):
        payload = tiny_payload()
        client = live_service.client("hot")
        first = client.submit_and_wait(payload, timeout=120)
        # Same digest vector -> same job, already terminal: the POST
        # response itself reports done, no polling needed.
        again = client.submit(payload)
        assert again["state"] == "done"
        assert again["job_id"] == first["job_id"]
        wire = client.raw_result(again["job_id"])
        assert wire == serial_bytes(payload)

    def test_cold_then_hot_bytes_are_identical(
        self, live_service, tiny_payload
    ):
        payload = tiny_payload(seeds=[3])
        client = live_service.client("coldhot")
        record = client.submit_and_wait(payload, timeout=120)
        cold = client.raw_result(record["job_id"])
        hot_record = client.submit(payload)
        assert hot_record["state"] == "done"
        assert client.raw_result(hot_record["job_id"]) == cold

    def test_validation_error_is_actionable(self, live_service):
        client = live_service.client("invalid")
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"scenario": "paper", "bogus_field": 1})
        assert excinfo.value.status == 400
        assert "bogus_field" in str(excinfo.value)
        assert "scenario" in str(excinfo.value)  # allowed keys listed

    def test_unknown_scenario_lists_choices(self, live_service):
        client = live_service.client("unknown")
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"scenario": "papper"})
        message = str(excinfo.value)
        assert excinfo.value.status == 400
        assert "papper" in message
        assert "did you mean" in message

    def test_result_before_completion_is_202(self, make_live, tiny_payload):
        # No workers running: the job stays queued forever.
        live = make_live(start_workers=False)
        client = live.client("pending")
        record = client.submit(tiny_payload(seeds=[9]))
        assert record["state"] == "queued"
        with pytest.raises(ServiceError) as excinfo:
            client.raw_result(record["job_id"])
        assert excinfo.value.status == 202

    def test_unknown_job_is_404(self, live_service):
        client = live_service.client("missing")
        with pytest.raises(ServiceError) as excinfo:
            client.status("deadbeef" * 8)
        assert excinfo.value.status == 404

    def test_metrics_event_schema(self, live_service, tiny_payload):
        client = live_service.client("metrics")
        client.submit_and_wait(tiny_payload(), timeout=120)
        metrics = client.metrics()
        assert metrics["event"] == "service_metrics"
        assert metrics["queue_depth"] == 0
        assert metrics["jobs"]["submitted"] >= 1
        assert metrics["jobs"]["completed"] >= 1
        assert metrics["cells"]["simulated"] >= 1
        assert metrics["requests"]["total"] >= 2
        assert metrics["cache"]["entries"] >= 1
        queue = client.queue()
        assert queue["event"] == "service_queue"
        assert queue["depth"] == 0
        states = {job["state"] for job in queue["jobs"]}
        assert states == {"done"}

    def test_event_stream_is_json_lines(self, live_service, tiny_payload):
        client = live_service.client("events")
        client.submit_and_wait(tiny_payload(seeds=[5]), timeout=120)
        events = live_service.event_log()
        kinds = [event["event"] for event in events]
        assert "service_started" in kinds
        assert "job_submitted" in kinds
        assert "job_completed" in kinds
        for event in events:
            assert isinstance(event["ts"], float)
            # Canonical JSON: re-serialising is stable.
            json.dumps(event)

    def test_server_restart_recovers_jobs(self, make_live, tiny_payload):
        payload = tiny_payload(seeds=[7])
        live = make_live()
        client = live.client("restart")
        record = client.submit_and_wait(payload, timeout=120)
        job_id = record["job_id"]
        baseline = client.raw_result(job_id)
        live.close()
        # A fresh server over the same cache directory knows the job.
        revived = make_live()
        client = revived.client("restart")
        record = client.status(job_id)
        assert record["state"] == "done"
        assert client.raw_result(job_id) == baseline
