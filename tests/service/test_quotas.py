"""Token-bucket quota accounting, including hypothesis properties.

The satellite property: random interleavings of takes and clock
advances never drive a budget negative (or above capacity), and a take
never succeeds that the refill arithmetic cannot pay for.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.quotas import ClientQuotas, TokenBucket


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_starts_full(self):
        clock = FakeClock()
        bucket = TokenBucket(4, 1, clock=clock)
        assert bucket.balance() == pytest.approx(4.0)

    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(3, 1, clock=clock)
        assert all(bucket.try_take() for _ in range(3))
        assert not bucket.try_take()

    def test_refills_continuously(self):
        clock = FakeClock()
        bucket = TokenBucket(2, 2, clock=clock)  # 2 tokens/s
        for _ in range(2):
            bucket.try_take()
        assert not bucket.try_take()
        clock.now += 0.5  # half a second -> one token
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_never_exceeds_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(5, 100, clock=clock)
        clock.now += 1000
        assert bucket.balance() == pytest.approx(5.0)

    def test_retry_after_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(1, 0.5, clock=clock)  # refill: 1 per 2s
        assert bucket.try_take()
        assert bucket.retry_after() == pytest.approx(2.0)
        clock.now += 1.0
        assert bucket.retry_after() == pytest.approx(1.0)
        clock.now += 1.0
        assert bucket.retry_after() == pytest.approx(0.0)
        assert bucket.try_take()

    def test_backwards_clock_never_debits(self):
        clock = FakeClock(100.0)
        bucket = TokenBucket(4, 1, clock=clock)
        bucket.try_take()
        balance = bucket.balance()
        clock.now = 0.0  # injected clock driven backwards
        assert bucket.balance() >= balance - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1)
        with pytest.raises(ValueError):
            TokenBucket(1, 0)
        with pytest.raises(ValueError):
            TokenBucket(1, 1).try_take(0)

    @given(
        capacity=st.floats(min_value=1, max_value=64),
        refill=st.floats(min_value=0.01, max_value=100),
        operations=st.lists(
            st.one_of(
                st.tuples(
                    st.just("advance"),
                    st.floats(min_value=0, max_value=10),
                ),
                st.tuples(
                    st.just("take"),
                    st.floats(min_value=0.1, max_value=8),
                ),
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_budget_never_negative_nor_overfull(
        self, capacity, refill, operations
    ):
        """The satellite property, via an exact shadow accounting.

        Whatever the interleaving, the observable balance stays within
        ``[0, capacity]`` and every granted take was affordable under
        the independent shadow model (same refill arithmetic, computed
        from first principles each step).
        """
        clock = FakeClock()
        bucket = TokenBucket(capacity, refill, clock=clock)
        shadow = capacity
        for kind, amount in operations:
            if kind == "advance":
                clock.now += amount
                shadow = min(capacity, shadow + amount * refill)
            else:
                granted = bucket.try_take(amount)
                affordable = shadow + 1e-6 >= amount
                if granted:
                    assert affordable
                    shadow = max(0.0, shadow - amount)
                balance = bucket.balance()
                assert -1e-9 <= balance <= capacity + 1e-9
                assert balance == pytest.approx(shadow, abs=1e-3)

    def test_thread_safety_no_overdraft(self):
        """Hammered from many threads, grants never exceed the budget."""
        bucket = TokenBucket(50, 0.000001)  # effectively no refill
        grants = []

        def taker():
            for _ in range(25):
                if bucket.try_take():
                    grants.append(1)

        threads = [threading.Thread(target=taker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(grants) <= 50
        assert bucket.balance() >= 0.0


class TestClientQuotas:
    def test_clients_are_isolated(self):
        clock = FakeClock()
        quotas = ClientQuotas(1, 1, clock=clock)
        allowed, _ = quotas.try_take("alice")
        assert allowed
        allowed, retry = quotas.try_take("alice")
        assert not allowed and retry > 0
        allowed, _ = quotas.try_take("bob")  # bob's bucket is untouched
        assert allowed

    def test_snapshot_sorted_and_bounded(self):
        clock = FakeClock()
        quotas = ClientQuotas(4, 1, clock=clock)
        for client in ("zoe", "abe", "mia"):
            quotas.try_take(client)
        snapshot = quotas.snapshot()
        assert [entry["client"] for entry in snapshot] == ["abe", "mia", "zoe"]
        for entry in snapshot:
            assert 0.0 <= entry["tokens"] <= entry["capacity"]
