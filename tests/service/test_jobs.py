"""Job-state machine and store tests, including hypothesis properties.

The key property (ISSUE satellite): random interleavings of
submit/lease/publish/fail/expire never reach an illegal transition —
every walk either follows the transition table exactly or raises
:class:`IllegalTransition` and leaves the record unchanged.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.jobs import (
    DONE,
    FAILED,
    JOB_STATES,
    LEASED,
    PUBLISHED,
    QUEUED,
    TERMINAL_STATES,
    TRANSITIONS,
    IllegalTransition,
    JobRecord,
    JobStore,
    job_id_for,
)


def record(job_id="a" * 64, state=QUEUED) -> JobRecord:
    return JobRecord(
        job_id=job_id,
        client="test",
        payload={"scenario": "paper"},
        spec_name="service:paper",
        digests=("d1", "d2"),
        state=state,
        submitted_at=1.0,
        updated_at=1.0,
        history=[(QUEUED, 1.0)],
    )


class TestTransitionTable:
    def test_table_covers_every_state(self):
        assert set(TRANSITIONS) == set(JOB_STATES)

    def test_terminal_states_have_no_exits(self):
        for state in TERMINAL_STATES:
            assert TRANSITIONS[state] == ()

    def test_happy_path(self):
        job = record()
        for step, target in enumerate([LEASED, PUBLISHED, DONE], start=2):
            job.transition(target, float(step))
        assert job.state == DONE
        assert [state for state, _ in job.history] == [
            QUEUED, LEASED, PUBLISHED, DONE,
        ]

    def test_lease_expiry_requeues(self):
        job = record()
        job.transition(LEASED, 2.0, worker="w0")
        job.transition(QUEUED, 3.0)  # expiry path
        assert job.worker is None  # unowned again
        job.transition(LEASED, 4.0, worker="w1")
        assert job.worker == "w1"

    def test_illegal_transition_raises_and_names_choices(self):
        job = record()
        with pytest.raises(IllegalTransition) as excinfo:
            job.transition(DONE, 2.0)
        assert "queued" in str(excinfo.value)
        assert "leased" in str(excinfo.value)
        assert job.state == QUEUED  # unchanged

    def test_unknown_state_raises(self):
        with pytest.raises(IllegalTransition):
            record().transition("limbo", 2.0)

    @given(
        steps=st.lists(
            st.sampled_from(JOB_STATES), min_size=1, max_size=30
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_random_interleavings_never_corrupt_state(self, steps):
        """The satellite property: arbitrary walks stay on the table.

        Every attempted move either is a legal edge (and the state
        advances accordingly) or raises and provably changes nothing.
        Afterwards the recorded history must itself be a legal path —
        there is no way to smuggle an illegal hop into a record.
        """
        job = record()
        clock = 1.0
        for target in steps:
            clock += 1.0
            before = job.state
            if target in TRANSITIONS[before]:
                job.transition(target, clock)
                assert job.state == target
                assert job.updated_at == clock
            else:
                with pytest.raises(IllegalTransition):
                    job.transition(target, clock)
                assert job.state == before
        states = [state for state, _ in job.history]
        for current, following in zip(states, states[1:]):
            assert following in TRANSITIONS[current]
        if job.terminal:
            assert job.state in TERMINAL_STATES


class TestJobIds:
    def test_content_addressed(self):
        assert job_id_for(["d1", "d2"]) == job_id_for(("d1", "d2"))

    def test_order_matters(self):
        assert job_id_for(["d1", "d2"]) != job_id_for(["d2", "d1"])

    def test_distinct_vectors_distinct_ids(self):
        assert job_id_for(["d1"]) != job_id_for(["d1", "d1"])


class TestJobStore:
    @pytest.fixture
    def store(self, tmp_path):
        return JobStore(tmp_path / "service", clock=lambda: 42.0)

    def test_create_is_idempotent(self, store):
        first, created = store.create("c", {"x": 1}, "spec", ["d1"])
        again, created_again = store.create("c", {"x": 1}, "spec", ["d1"])
        assert created and not created_again
        assert first.job_id == again.job_id

    def test_failed_job_is_replaced_on_resubmit(self, store):
        first, _ = store.create("c", {"x": 1}, "spec", ["d1"])
        store.transition(first.job_id, FAILED, error="boom")
        fresh, created = store.create("c", {"x": 1}, "spec", ["d1"])
        assert created
        assert fresh.state == QUEUED
        assert fresh.error is None

    def test_round_trips_through_disk(self, store, tmp_path):
        created, _ = store.create("c", {"scenario": "paper"}, "spec", ["d1"])
        store.transition(created.job_id, LEASED, worker="w0")
        reloaded = JobStore(tmp_path / "service")
        records = reloaded.load_existing()
        assert len(records) == 1
        assert records[0].to_dict() == created.to_dict()

    def test_corrupt_record_skipped_on_load(self, store, tmp_path):
        store.create("c", {"x": 1}, "spec", ["d1"])
        (tmp_path / "service" / "jobs" / "junk.json").write_text("{nope")
        reloaded = JobStore(tmp_path / "service")
        assert len(reloaded.load_existing()) == 1

    def test_records_sorted_by_submission(self, tmp_path):
        ticks = iter(range(100))
        store = JobStore(tmp_path / "s", clock=lambda: float(next(ticks)))
        for n in range(5):
            store.create("c", {"n": n}, "spec", [f"d{n}"])
        times = [record.submitted_at for record in store.records()]
        assert times == sorted(times)

    def test_counts(self, store):
        a, _ = store.create("c", {"x": 1}, "spec", ["d1"])
        b, _ = store.create("c", {"x": 2}, "spec", ["d2"])
        store.transition(a.job_id, LEASED, worker="w")
        counts = store.counts()
        assert counts[QUEUED] == 1
        assert counts[LEASED] == 1
        assert counts[DONE] == 0

    def test_transition_unknown_job(self, store):
        with pytest.raises(KeyError):
            store.transition("f" * 64, LEASED)

    def test_concurrent_leasing_single_winner(self, store):
        """Exactly one of many racing threads may lease a queued job."""
        created, _ = store.create("c", {"x": 1}, "spec", ["d1"])
        outcomes = []

        def lease(name):
            try:
                store.transition(created.job_id, LEASED, worker=name)
                outcomes.append(name)
            except IllegalTransition:
                pass

        threads = [
            threading.Thread(target=lease, args=(f"w{i}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(outcomes) == 1
        assert store.get(created.job_id).worker == outcomes[0]
