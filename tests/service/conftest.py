"""Shared fixtures for the sweep-service tests.

``live_service`` boots a real :class:`SweepService` behind a real
``ThreadingHTTPServer`` on an ephemeral port over a per-test cache
directory — the full stack the ``serve`` command runs, minus only the
argparse layer — and tears both down afterwards.  Tests reach the
server exclusively through :class:`ServiceClient`, so the HTTP surface
itself is exercised, not just the service object.

The test directories carry no ``__init__.py`` (repo convention), so
helpers are shared as fixtures: ``make_live`` is the factory for tests
needing custom quota/worker settings, ``tiny_payload`` builds
sub-second sweep submissions, ``serial_bytes`` computes the canonical
local bytes a service response must match.
"""

from __future__ import annotations

import io
import json
import threading
from typing import Callable, List, Optional

import pytest

from repro.exec import ResultCache, SweepExecutor, canonical_json
from repro.scenarios import spec_from_payload
from repro.service.client import ServiceClient
from repro.service.server import SweepService, make_server

#: A sweep payload that simulates in well under a second.
TINY_PAYLOAD = {
    "scenario": "paper",
    "scale": "quick",
    "population": 60,
    "rounds": 300,
    "seeds": [0],
}


class LiveService:
    """One running server: service + HTTP thread + client factory."""

    def __init__(
        self,
        cache: ResultCache,
        workers: int = 1,
        quota_capacity: float = 1000.0,
        quota_refill: float = 1000.0,
        lease_ttl: float = 5.0,
        start_workers: bool = True,
    ):
        self.cache = cache
        self.events = io.StringIO()
        self.service = SweepService(
            cache,
            workers=workers,
            lease_ttl=lease_ttl,
            poll_interval=0.02,
            quota_capacity=quota_capacity,
            quota_refill=quota_refill,
            events=self.events,
        )
        if start_workers:
            self.service.start()
        self.server = make_server(self.service)
        host, port = self.server.server_address[:2]
        self.url = f"http://{host}:{port}"
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.02},
            daemon=True,
        )
        self._thread.start()

    def client(self, client_id: Optional[str] = None) -> ServiceClient:
        return ServiceClient(self.url, client_id=client_id, timeout=30.0)

    def event_log(self) -> List[dict]:
        return [
            json.loads(line)
            for line in self.events.getvalue().strip().splitlines()
            if line
        ]

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.service.stop()


@pytest.fixture
def service_cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def make_live(service_cache) -> Callable[..., LiveService]:
    """Factory for live servers over the shared per-test cache.

    Every server built here is torn down at test end, in reverse
    construction order, even when the test raises.
    """
    spawned: List[LiveService] = []

    def factory(**kwargs) -> LiveService:
        live = LiveService(kwargs.pop("cache", service_cache), **kwargs)
        spawned.append(live)
        return live

    yield factory
    for live in reversed(spawned):
        live.close()


@pytest.fixture
def live_service(make_live) -> LiveService:
    return make_live()


@pytest.fixture
def tiny_payload() -> Callable[..., dict]:
    """Submission documents that simulate in well under a second."""

    def build(**overrides) -> dict:
        payload = dict(TINY_PAYLOAD)
        payload.update(overrides)
        return payload

    return build


@pytest.fixture
def serial_bytes() -> Callable[[dict], bytes]:
    """What a local serial run serialises a submission to."""

    def compute(payload: dict) -> bytes:
        sweep = SweepExecutor().run(spec_from_payload(payload))
        return canonical_json(
            [result.to_dict() for result in sweep.results]
        ).encode("utf-8")

    return compute
