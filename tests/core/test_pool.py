"""Tests for partner-pool construction."""

import numpy as np
import pytest

from repro.core.acceptance import AcceptancePolicy, UniformAcceptancePolicy
from repro.core.pool import build_pool
from repro.core.selection import Candidate


@pytest.fixture
def rng():
    return np.random.default_rng(8)


def candidates(ages):
    return [Candidate(peer_id=i, age=age) for i, age in enumerate(ages)]


class TestBuildPool:
    def test_uniform_acceptance_fills_target(self, rng):
        result = build_pool(
            owner_age=0,
            candidates=iter(candidates([10] * 20)),
            acceptance=UniformAcceptancePolicy(),
            rng=rng,
            target_size=5,
            max_examined=100,
        )
        assert result.size == 5
        assert result.examined == 5

    def test_examination_budget_respected(self, rng):
        result = build_pool(
            owner_age=0,
            candidates=iter(candidates([10] * 100)),
            acceptance=UniformAcceptancePolicy(),
            rng=rng,
            target_size=50,
            max_examined=7,
        )
        assert result.examined == 7
        assert result.size == 7

    def test_exhausted_candidate_stream(self, rng):
        result = build_pool(
            owner_age=0,
            candidates=iter(candidates([10, 20])),
            acceptance=UniformAcceptancePolicy(),
            rng=rng,
            target_size=5,
            max_examined=100,
        )
        assert result.size == 2

    def test_old_candidates_always_accepted_by_young_owner(self, rng):
        policy = AcceptancePolicy(age_cap=100)
        result = build_pool(
            owner_age=0,
            candidates=iter(candidates([200] * 10)),
            acceptance=policy,
            rng=rng,
            target_size=10,
            max_examined=10,
        )
        # Candidate side: f(200, 0) = 1/100 — most will refuse the
        # newborn owner; owner side always accepts the elders.
        assert result.rejected_by_owner == 0
        assert result.size + result.rejected_by_candidate == 10

    def test_rejection_counts_add_up(self, rng):
        policy = AcceptancePolicy(age_cap=50)
        result = build_pool(
            owner_age=50,
            candidates=iter(candidates([0] * 200)),
            acceptance=policy,
            rng=rng,
            target_size=200,
            max_examined=200,
        )
        assert (
            result.size
            + result.rejected_by_owner
            + result.rejected_by_candidate
            == result.examined
        )
        # f(50, 0) with L=50 is 1/50: the owner rejects most newborns.
        assert result.rejected_by_owner > 100

    def test_zero_target(self, rng):
        result = build_pool(
            owner_age=0,
            candidates=iter(candidates([1] * 5)),
            acceptance=UniformAcceptancePolicy(),
            rng=rng,
            target_size=0,
            max_examined=10,
        )
        assert result.size == 0
        assert result.examined == 0

    def test_negative_arguments(self, rng):
        with pytest.raises(ValueError):
            build_pool(0, iter([]), UniformAcceptancePolicy(), rng, -1, 10)
        with pytest.raises(ValueError):
            build_pool(0, iter([]), UniformAcceptancePolicy(), rng, 1, -10)

    def test_mutual_acceptance_probability_statistics(self):
        """Acceptance frequency matches the analytic mutual probability."""
        policy = AcceptancePolicy(age_cap=100)
        owner_age, candidate_age = 80.0, 30.0
        expected = policy.mutual_probability(owner_age, candidate_age)
        rng = np.random.default_rng(0)
        accepted = 0
        trials = 20_000
        result = build_pool(
            owner_age=owner_age,
            candidates=iter(
                Candidate(peer_id=i, age=candidate_age) for i in range(trials)
            ),
            acceptance=policy,
            rng=rng,
            target_size=trials,
            max_examined=trials,
        )
        accepted = result.size
        assert accepted / trials == pytest.approx(expected, abs=0.02)
