"""Tests for partner-selection strategies."""

import numpy as np
import pytest

from repro.core.selection import (
    AgeSelection,
    AvailabilitySelection,
    Candidate,
    OracleSelection,
    RandomSelection,
    available_strategies,
    strategy_by_name,
)


@pytest.fixture
def rng():
    return np.random.default_rng(17)


def make_candidates():
    return [
        Candidate(peer_id=1, age=10, availability=0.2, true_remaining_lifetime=5),
        Candidate(peer_id=2, age=500, availability=0.9, true_remaining_lifetime=100),
        Candidate(peer_id=3, age=100, availability=0.5, true_remaining_lifetime=5000),
        Candidate(peer_id=4, age=2000, availability=None, true_remaining_lifetime=None),
    ]


class TestCandidate:
    def test_validation(self):
        with pytest.raises(ValueError):
            Candidate(peer_id=1, age=-1)
        with pytest.raises(ValueError):
            Candidate(peer_id=1, age=1, availability=1.5)

    def test_optional_fields_default_none(self):
        candidate = Candidate(peer_id=1, age=0)
        assert candidate.availability is None
        assert candidate.true_remaining_lifetime is None


class TestAgeSelection:
    def test_orders_by_age_descending(self, rng):
        ranked = AgeSelection().rank(make_candidates(), rng)
        assert ranked == [4, 2, 3, 1]

    def test_ties_broken_randomly_not_by_id(self):
        candidates = [Candidate(peer_id=i, age=50) for i in range(40)]
        first_positions = set()
        for seed in range(10):
            ranked = AgeSelection().rank(candidates, np.random.default_rng(seed))
            first_positions.add(ranked[0])
        assert len(first_positions) > 1

    def test_select_respects_count(self, rng):
        chosen = AgeSelection().select(make_candidates(), 2, rng)
        assert chosen == [4, 2]

    def test_select_with_scarce_candidates(self, rng):
        chosen = AgeSelection().select(make_candidates(), 99, rng)
        assert len(chosen) == 4

    def test_select_negative_count(self, rng):
        with pytest.raises(ValueError):
            AgeSelection().select(make_candidates(), -1, rng)


class TestRandomSelection:
    def test_is_a_permutation(self, rng):
        candidates = make_candidates()
        ranked = RandomSelection().rank(candidates, rng)
        assert sorted(ranked) == [1, 2, 3, 4]

    def test_varies_with_seed(self):
        candidates = [Candidate(peer_id=i, age=i) for i in range(30)]
        a = RandomSelection().rank(candidates, np.random.default_rng(1))
        b = RandomSelection().rank(candidates, np.random.default_rng(2))
        assert a != b


class TestAvailabilitySelection:
    def test_orders_by_availability(self, rng):
        ranked = AvailabilitySelection().rank(make_candidates(), rng)
        # 0.9 > 0.5 > 0.2 > unmeasured.
        assert ranked == [2, 3, 1, 4]

    def test_age_breaks_ties(self, rng):
        candidates = [
            Candidate(peer_id=1, age=10, availability=0.5),
            Candidate(peer_id=2, age=99, availability=0.5),
        ]
        assert AvailabilitySelection().rank(candidates, rng)[0] == 2


class TestOracleSelection:
    def test_orders_by_true_remaining(self, rng):
        ranked = OracleSelection().rank(make_candidates(), rng)
        # None -> inf first, then 5000, 100, 5.
        assert ranked == [4, 3, 2, 1]

    def test_infinite_remaining_sorts_first(self, rng):
        candidates = [
            Candidate(peer_id=1, age=0, true_remaining_lifetime=float("inf")),
            Candidate(peer_id=2, age=0, true_remaining_lifetime=10.0),
        ]
        assert OracleSelection().rank(candidates, rng)[0] == 1


class TestRegistry:
    def test_all_strategies_registered(self):
        assert available_strategies() == ["age", "availability", "oracle", "random"]

    @pytest.mark.parametrize("name", ["age", "random", "availability", "oracle"])
    def test_lookup(self, name):
        assert strategy_by_name(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            strategy_by_name("fortune-teller")

    def test_empty_candidate_list(self, rng):
        for name in available_strategies():
            assert strategy_by_name(name).rank([], rng) == []


class TestSelectPairs:
    """The (peer_id, age) fast path must agree with the Candidate path."""

    PAIRS = [(1, 5.0), (2, 40.0), (3, 40.0), (4, 0.0), (5, 17.0)]

    def as_candidates(self):
        return [Candidate(peer_id=i, age=a) for i, a in self.PAIRS]

    @pytest.mark.parametrize("name", ["age", "random", "availability", "oracle"])
    def test_matches_candidate_selection(self, name):
        import numpy as np

        strategy = strategy_by_name(name)
        chosen_pairs = strategy.select_pairs(
            self.PAIRS, 3, np.random.default_rng(7)
        )
        chosen_candidates = strategy.select(
            self.as_candidates(), 3, np.random.default_rng(7)
        )
        assert chosen_pairs == chosen_candidates

    def test_age_prefers_oldest(self, rng):
        chosen = strategy_by_name("age").select_pairs(self.PAIRS, 2, rng)
        assert set(chosen) == {2, 3}

    def test_count_zero_and_negative(self, rng):
        strategy = strategy_by_name("age")
        assert strategy.select_pairs(self.PAIRS, 0, rng) == []
        with pytest.raises(ValueError):
            strategy.select_pairs(self.PAIRS, -1, rng)
        with pytest.raises(ValueError):
            strategy_by_name("random").select_pairs(self.PAIRS, -1, rng)

    def test_empty_pairs(self, rng):
        for name in ("age", "random", "availability", "oracle"):
            assert strategy_by_name(name).select_pairs([], 3, rng) == []
