"""Tests for the paper's acceptation function and its properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acceptance import (
    DEFAULT_AGE_CAP,
    AcceptancePolicy,
    UniformAcceptancePolicy,
    acceptance_probability,
    acceptance_rule,
    minimum_probability,
)

ages = st.floats(min_value=0, max_value=1e6, allow_nan=False)


class TestFormula:
    def test_default_cap_is_90_days(self):
        assert DEFAULT_AGE_CAP == 90 * 24

    def test_equal_ages_give_probability_above_one_clamped(self):
        # f = (L - 0 + 1)/L = 1 + 1/L, clamped to 1.
        assert acceptance_probability(100, 100) == 1.0

    def test_older_candidate_always_accepted(self):
        assert acceptance_probability(50, 200) == 1.0
        assert acceptance_probability(0, 1) == 1.0

    def test_known_value(self):
        # L=100, s1=60, s2=10: (100 - 50 + 1)/100 = 0.51.
        assert acceptance_probability(60, 10, age_cap=100) == pytest.approx(0.51)

    def test_minimum_is_one_over_l(self):
        # Elder at the cap vs a brand-new peer: (L - L + 1)/L = 1/L.
        value = acceptance_probability(DEFAULT_AGE_CAP, 0)
        assert value == pytest.approx(1 / DEFAULT_AGE_CAP)
        assert value == pytest.approx(minimum_probability())

    def test_ages_above_cap_are_capped(self):
        cap = 100
        assert acceptance_probability(1000, 2000, age_cap=cap) == 1.0
        assert acceptance_probability(1000, 50, age_cap=cap) == pytest.approx(
            acceptance_probability(cap, 50, age_cap=cap)
        )

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            acceptance_probability(-1, 5)

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            acceptance_probability(1, 2, age_cap=0)
        with pytest.raises(ValueError):
            minimum_probability(0)


class TestPaperProperties:
    """The three properties stated in section 3.2."""

    @settings(max_examples=200, deadline=None)
    @given(ages, ages)
    def test_never_zero(self, own, other):
        assert acceptance_probability(own, other) >= 1 / DEFAULT_AGE_CAP

    @settings(max_examples=200, deadline=None)
    @given(ages, st.floats(min_value=0, max_value=1e6))
    def test_one_when_candidate_older(self, own, extra):
        assert acceptance_probability(own, own + extra) == 1.0

    @settings(max_examples=200, deadline=None)
    @given(
        st.floats(min_value=0, max_value=DEFAULT_AGE_CAP - 2),
        st.floats(min_value=2, max_value=DEFAULT_AGE_CAP),
    )
    def test_asymmetric_below_cap(self, young, gap):
        # The formula's +1 forgives a one-round age gap, so true
        # asymmetry needs a gap of at least two rounds.
        old = min(young + gap, DEFAULT_AGE_CAP)
        forward = acceptance_probability(old, young)
        backward = acceptance_probability(young, old)
        assert backward == 1.0
        assert forward < backward

    @settings(max_examples=100, deadline=None)
    @given(ages, ages)
    def test_result_is_probability(self, own, other):
        value = acceptance_probability(own, other)
        assert 0.0 < value <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=0, max_value=1e5),
        st.floats(min_value=0, max_value=1e5),
        st.floats(min_value=0, max_value=1e5),
    )
    def test_monotone_in_candidate_age(self, own, age_a, age_b):
        younger, older = sorted((age_a, age_b))
        assert acceptance_probability(own, older) >= acceptance_probability(
            own, younger
        )


class TestAcceptancePolicy:
    def test_decide_threshold_behaviour(self):
        policy = AcceptancePolicy(age_cap=100)
        probability = policy.probability(60, 10)
        assert policy.decide(60, 10, probability - 1e-9)
        assert not policy.decide(60, 10, probability + 1e-9)

    def test_decide_validates_uniform(self):
        policy = AcceptancePolicy()
        with pytest.raises(ValueError):
            policy.decide(1, 1, 1.0)
        with pytest.raises(ValueError):
            policy.decide(1, 1, -0.1)

    def test_mutual_probability(self):
        policy = AcceptancePolicy(age_cap=100)
        assert policy.mutual_probability(50, 50) == 1.0
        one_sided = policy.probability(80, 20)
        assert policy.mutual_probability(80, 20) == pytest.approx(one_sided)

    def test_bad_cap(self):
        with pytest.raises(ValueError):
            AcceptancePolicy(age_cap=0)


class TestUniformAcceptance:
    def test_always_accepts(self):
        policy = UniformAcceptancePolicy()
        assert policy.probability(1e6, 0) == 1.0
        assert policy.decide(1e6, 0, 0.999999)
        assert policy.mutual_probability(5, 500) == 1.0

    def test_still_validates_inputs(self):
        policy = UniformAcceptancePolicy()
        with pytest.raises(ValueError):
            policy.probability(-1, 0)
        with pytest.raises(ValueError):
            policy.decide(1, 1, 1.5)


class TestAcceptanceRule:
    def test_age_rule(self):
        assert isinstance(acceptance_rule("age"), AcceptancePolicy)

    def test_uniform_rule(self):
        assert isinstance(acceptance_rule("uniform"), UniformAcceptancePolicy)

    def test_unknown_rule(self):
        with pytest.raises(ValueError):
            acceptance_rule("psychic")

    def test_cap_is_forwarded(self):
        assert acceptance_rule("age", age_cap=77).age_cap == 77
