"""Tests for the repair policy and threshold scaling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import RepairPolicy, scaled_threshold


class TestRepairPolicy:
    def test_paper_policy_constructs(self):
        policy = RepairPolicy(128, 256, 148)
        assert policy.k == 128
        assert policy.n == 256
        assert policy.parity_blocks == 128

    @pytest.mark.parametrize("k,n,threshold", [
        (0, 10, 5),       # k < 1
        (10, 5, 7),       # n < k
        (10, 20, 9),      # threshold < k
        (10, 20, 21),     # threshold > n
    ])
    def test_invalid_parameters(self, k, n, threshold):
        with pytest.raises(ValueError):
            RepairPolicy(k, n, threshold)

    def test_needs_repair_boundary(self):
        policy = RepairPolicy(128, 256, 148)
        assert policy.needs_repair(147)
        assert not policy.needs_repair(148)
        assert not policy.needs_repair(256)

    def test_can_decode_boundary(self):
        policy = RepairPolicy(128, 256, 148)
        assert policy.can_decode(128)
        assert not policy.can_decode(127)

    def test_is_lost_boundary(self):
        policy = RepairPolicy(128, 256, 148)
        assert policy.is_lost(127)
        assert not policy.is_lost(128)

    def test_blocks_to_recruit(self):
        policy = RepairPolicy(128, 256, 148)
        assert policy.blocks_to_recruit(140) == 116
        assert policy.blocks_to_recruit(256) == 0
        assert policy.blocks_to_recruit(0) == 256

    def test_negative_counts_rejected(self):
        policy = RepairPolicy(4, 8, 5)
        for method in (
            policy.needs_repair,
            policy.can_decode,
            policy.is_lost,
            policy.blocks_to_recruit,
        ):
            with pytest.raises(ValueError):
                method(-1)

    def test_with_threshold(self):
        policy = RepairPolicy(128, 256, 148)
        updated = policy.with_threshold(160)
        assert updated.repair_threshold == 160
        assert updated.k == policy.k

    def test_paper_loss_scenario(self):
        """Section 4.2.1's example: threshold 132, burst below 128."""
        policy = RepairPolicy(128, 256, 132)
        assert not policy.needs_repair(133)
        assert policy.needs_repair(131)
        # A burst of >5 failures jumps under k: repair impossible.
        assert not policy.can_decode(127)
        assert policy.is_lost(127)


class TestScaledThreshold:
    def test_identity_at_paper_scale(self):
        for threshold in (132, 148, 180):
            assert scaled_threshold(
                threshold, target_k=128, target_n=256
            ) == threshold

    def test_focus_threshold_at_k16(self):
        # 148 has slack 20/128 = 15.6%; k=16, n=32 gives 16 + 2.5 -> 18.
        assert scaled_threshold(148, target_k=16, target_n=32) == 18

    def test_never_degenerates_to_k(self):
        # The lowest paper threshold keeps a strictly positive slack.
        assert scaled_threshold(132, target_k=8, target_n=16) == 9

    def test_zero_slack_maps_to_k(self):
        assert scaled_threshold(128, target_k=8, target_n=16) == 8

    def test_full_slack_maps_to_n(self):
        assert scaled_threshold(256, target_k=8, target_n=16) == 16

    def test_out_of_range_paper_threshold(self):
        with pytest.raises(ValueError):
            scaled_threshold(100, target_k=8, target_n=16)

    def test_bad_target(self):
        with pytest.raises(ValueError):
            scaled_threshold(148, target_k=16, target_n=16)

    @settings(max_examples=100, deadline=None)
    @given(
        paper_threshold=st.integers(min_value=129, max_value=256),
        target_k=st.integers(min_value=2, max_value=64),
        extra=st.integers(min_value=1, max_value=64),
    )
    def test_result_always_valid_for_policy(self, paper_threshold, target_k, extra):
        target_n = target_k + extra
        threshold = scaled_threshold(
            paper_threshold, target_k=target_k, target_n=target_n
        )
        RepairPolicy(target_k, target_n, threshold)  # must not raise
        assert threshold > target_k  # positive slack preserved

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.integers(min_value=129, max_value=256),
        b=st.integers(min_value=129, max_value=256),
    )
    def test_monotone_in_paper_threshold(self, a, b):
        low, high = sorted((a, b))
        assert scaled_threshold(low, target_k=16, target_n=32) <= scaled_threshold(
            high, target_k=16, target_n=32
        )
