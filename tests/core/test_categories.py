"""Tests for the age categories (paper table in section 4.2.1)."""

import pytest

from repro.churn.profiles import ROUNDS_PER_MONTH
from repro.core.categories import (
    DEFAULT_SCHEME,
    ELDER,
    NEWCOMER,
    OLD,
    PAPER_CATEGORIES,
    YOUNG,
    Category,
    CategoryScheme,
)


class TestPaperBrackets:
    def test_newcomer_is_under_three_months(self):
        assert NEWCOMER.lower == 0
        assert NEWCOMER.upper == 3 * ROUNDS_PER_MONTH

    def test_young_is_three_to_six_months(self):
        assert (YOUNG.lower, YOUNG.upper) == (
            3 * ROUNDS_PER_MONTH,
            6 * ROUNDS_PER_MONTH,
        )

    def test_old_is_six_to_eighteen_months(self):
        assert (OLD.lower, OLD.upper) == (
            6 * ROUNDS_PER_MONTH,
            18 * ROUNDS_PER_MONTH,
        )

    def test_elder_is_unbounded_above_eighteen_months(self):
        assert ELDER.lower == 18 * ROUNDS_PER_MONTH
        assert ELDER.upper is None

    def test_order(self):
        assert PAPER_CATEGORIES == (NEWCOMER, YOUNG, OLD, ELDER)


class TestCategory:
    def test_contains_boundaries(self):
        category = Category("X", 10, 20)
        assert not category.contains(9.99)
        assert category.contains(10)
        assert category.contains(19.99)
        assert not category.contains(20)

    def test_unbounded_contains(self):
        category = Category("X", 10, None)
        assert category.contains(1e12)

    def test_validation(self):
        with pytest.raises(ValueError):
            Category("X", -1, 5)
        with pytest.raises(ValueError):
            Category("X", 10, 10)


class TestCategoryScheme:
    def test_classify_each_bracket(self):
        month = ROUNDS_PER_MONTH
        assert DEFAULT_SCHEME.classify(0).name == "Newcomers"
        assert DEFAULT_SCHEME.classify(4 * month).name == "Young peers"
        assert DEFAULT_SCHEME.classify(12 * month).name == "Old peers"
        assert DEFAULT_SCHEME.classify(24 * month).name == "Elder peers"

    def test_classify_negative_age(self):
        with pytest.raises(ValueError):
            DEFAULT_SCHEME.classify(-1)

    def test_names_in_order(self):
        assert DEFAULT_SCHEME.names() == [
            "Newcomers",
            "Young peers",
            "Old peers",
            "Elder peers",
        ]

    def test_non_contiguous_rejected(self):
        with pytest.raises(ValueError):
            CategoryScheme((Category("A", 0, 10), Category("B", 20, None)))

    def test_bounded_middle_unbounded_rejected(self):
        with pytest.raises(ValueError):
            CategoryScheme((Category("A", 0, None), Category("B", 10, None)))

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            CategoryScheme((Category("A", 5, None),))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CategoryScheme(())

    def test_single_unbounded_category(self):
        scheme = CategoryScheme((Category("All", 0, None),))
        assert scheme.classify(123).name == "All"

    def test_bounded_final_category_raises_past_end(self):
        scheme = CategoryScheme((Category("A", 0, 10),))
        with pytest.raises(ValueError):
            scheme.classify(10)


class TestScaling:
    def test_scaled_preserves_names_and_order(self):
        scaled = DEFAULT_SCHEME.scaled(0.5)
        assert scaled.names() == DEFAULT_SCHEME.names()

    def test_scaled_halves_bounds(self):
        scaled = DEFAULT_SCHEME.scaled(0.5)
        assert scaled.categories[0].upper == int(3 * ROUNDS_PER_MONTH * 0.5)

    def test_scaled_stays_contiguous(self):
        for factor in (0.05, 0.15, 0.33, 0.5):
            scaled = DEFAULT_SCHEME.scaled(factor)
            assert scaled.classify(0).name == "Newcomers"

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            DEFAULT_SCHEME.scaled(0)


class TestTable:
    def test_table_rendering(self):
        table = DEFAULT_SCHEME.table()
        assert table["Elder peers"].startswith(">")
        assert "2160" in table["Newcomers"]
