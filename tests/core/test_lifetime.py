"""Tests for the lifetime-estimation statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn.lifetimes import ParetoLifetime
from repro.core.lifetime import (
    age_is_sufficient_statistic,
    conditional_remaining_curve,
    fit_pareto,
    fit_pareto_scipy,
    kaplan_meier,
    rank_by_expected_remaining,
)


def pareto_samples(shape=2.5, scale=100.0, count=4000, seed=0):
    rng = np.random.default_rng(seed)
    dist = ParetoLifetime(shape=shape, scale=scale)
    return [dist.sample(rng) for _ in range(count)]


class TestFitPareto:
    def test_recovers_known_parameters(self):
        fit = fit_pareto(pareto_samples(shape=2.5, scale=100.0))
        assert fit.shape == pytest.approx(2.5, rel=0.1)
        assert fit.scale == pytest.approx(100.0, rel=0.05)

    def test_scale_is_sample_minimum(self):
        samples = [10.0, 20.0, 30.0]
        assert fit_pareto(samples).scale == 10.0

    def test_sample_size_recorded(self):
        assert fit_pareto([1.0, 2.0, 3.0]).sample_size == 3

    def test_rejects_tiny_samples(self):
        with pytest.raises(ValueError):
            fit_pareto([5.0])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            fit_pareto([1.0, 0.0])

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            fit_pareto([7.0, 7.0, 7.0])

    def test_agrees_with_scipy(self):
        samples = pareto_samples(shape=1.8, scale=50.0, count=3000, seed=4)
        ours = fit_pareto(samples)
        scipys = fit_pareto_scipy(samples)
        assert ours.shape == pytest.approx(scipys.shape, rel=0.05)
        assert ours.scale == pytest.approx(scipys.scale, rel=0.05)


class TestParetoFitMethods:
    def test_survival(self):
        fit = fit_pareto(pareto_samples())
        assert fit.survival(fit.scale / 2) == 1.0
        assert 0 < fit.survival(fit.scale * 10) < 1

    def test_expected_remaining_grows_above_scale(self):
        fit = fit_pareto(pareto_samples(shape=2.0))
        ages = [fit.scale, fit.scale * 2, fit.scale * 8]
        values = [fit.expected_remaining(a) for a in ages]
        assert values == sorted(values)

    def test_expected_remaining_negative_age(self):
        fit = fit_pareto(pareto_samples())
        with pytest.raises(ValueError):
            fit.expected_remaining(-1)

    def test_heavy_tail_infinite_remaining(self):
        fit = fit_pareto(pareto_samples(shape=0.8, count=3000, seed=2))
        if fit.shape <= 1.0:
            assert fit.expected_remaining(100) == float("inf")


class TestKaplanMeier:
    def test_no_censoring_matches_empirical(self):
        durations = [1.0, 2.0, 3.0, 4.0]
        curve = kaplan_meier(durations, [True] * 4)
        assert curve.at(2.5) == pytest.approx(0.5)
        assert curve.at(4.0) == pytest.approx(0.0)

    def test_full_censoring_stays_at_one(self):
        curve = kaplan_meier([5.0, 6.0], [False, False])
        assert curve.at(10.0) == 1.0

    def test_censoring_reduces_at_risk(self):
        # One death at t=2 among {censored@1, dead@2, alive beyond}.
        curve = kaplan_meier([1.0, 2.0, 3.0], [False, True, False])
        assert curve.at(2.0) == pytest.approx(1 - 1 / 2)

    def test_before_first_event_is_one(self):
        curve = kaplan_meier([5.0], [True])
        assert curve.at(1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            kaplan_meier([1.0], [True, False])
        with pytest.raises(ValueError):
            kaplan_meier([], [])
        with pytest.raises(ValueError):
            kaplan_meier([-1.0], [True])

    def test_monotone_non_increasing(self):
        rng = np.random.default_rng(5)
        durations = rng.exponential(10, 200)
        completed = rng.random(200) < 0.7
        curve = kaplan_meier(durations, completed)
        assert list(curve.probabilities) == sorted(
            curve.probabilities, reverse=True
        )


class TestRanking:
    def test_rank_prefers_older_above_scale(self):
        fit = fit_pareto(pareto_samples(shape=2.0, scale=10.0))
        ages = [15.0, 200.0, 50.0]
        assert rank_by_expected_remaining(ages, fit) == [1, 2, 0]

    def test_age_sufficiency_above_scale(self):
        fit = fit_pareto(pareto_samples(shape=2.2, scale=30.0))
        ages = list(np.linspace(fit.scale, fit.scale * 50, 40))
        assert age_is_sufficient_statistic(ages, fit)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_age_sufficiency_property(self, seed):
        fit = fit_pareto(pareto_samples(shape=1.7, scale=20.0, count=500, seed=seed))
        rng = np.random.default_rng(seed)
        ages = list(fit.scale + rng.random(20) * 1000)
        assert age_is_sufficient_statistic(ages, fit)

    def test_conditional_curve_shape(self):
        fit = fit_pareto(pareto_samples(shape=2.0, scale=10.0))
        curve = conditional_remaining_curve(fit, [10, 20, 40, 80])
        values = [v for _, v in curve]
        assert values == sorted(values)
