"""Tests for the adaptive repair-threshold controller (A5)."""

import pytest

from repro.core.adaptive import AdaptiveConfig, AdaptiveThreshold
from repro.core.policy import RepairPolicy


def controller(base=18, k=16, n=32, **config):
    policy = RepairPolicy(k, n, base)
    return AdaptiveThreshold(policy, AdaptiveConfig(**config))


class TestAdaptiveConfig:
    def test_defaults_valid(self):
        AdaptiveConfig()

    @pytest.mark.parametrize("field,value", [
        ("raise_step", 0),
        ("lower_step", 0),
        ("decay_interval", 0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            AdaptiveConfig(**{field: value})


class TestThresholdMoves:
    def test_starts_at_base(self):
        assert controller().value == 18

    def test_blocked_raises(self):
        adaptive = controller()
        adaptive.on_blocked(now=10)
        assert adaptive.value == 19

    def test_starved_lowers(self):
        adaptive = controller()
        adaptive.on_starved(now=10)
        assert adaptive.value == 17

    def test_capped_at_n_minus_one(self):
        adaptive = controller(base=31)
        for _ in range(10):
            adaptive.on_blocked(now=10)
        assert adaptive.value == 31

    def test_floored_at_k_plus_one(self):
        adaptive = controller(base=17)
        for _ in range(10):
            adaptive.on_starved(now=10)
        assert adaptive.value == 17

    def test_base_clamped_into_band(self):
        # A base at n would leave no room; it clamps to n - 1.
        policy = RepairPolicy(16, 32, 32)
        adaptive = AdaptiveThreshold(policy)
        assert adaptive.base == 31

    def test_needs_repair_uses_current_value(self):
        adaptive = controller()
        assert adaptive.needs_repair(17)
        assert not adaptive.needs_repair(18)
        adaptive.on_blocked(now=1)  # threshold now 19
        assert adaptive.needs_repair(18)

    def test_needs_repair_validates(self):
        with pytest.raises(ValueError):
            controller().needs_repair(-1)


class TestDecay:
    def test_decays_back_toward_base_after_quiet(self):
        adaptive = controller(decay_interval=100)
        adaptive.on_blocked(now=0)
        adaptive.on_blocked(now=0)
        assert adaptive.value == 20
        adaptive.on_repair(now=250)  # 2 quiet intervals -> 2 steps down
        assert adaptive.value == 18

    def test_decay_never_overshoots_base(self):
        adaptive = controller(decay_interval=10)
        adaptive.on_blocked(now=0)
        adaptive.on_repair(now=10_000)
        assert adaptive.value == adaptive.base

    def test_decay_works_upward_too(self):
        adaptive = controller(base=20, decay_interval=10)
        adaptive.on_starved(now=0)
        adaptive.on_starved(now=0)
        assert adaptive.value == 18
        adaptive.on_repair(now=100)
        assert adaptive.value == 20

    def test_no_decay_before_interval(self):
        adaptive = controller(decay_interval=100)
        adaptive.on_blocked(now=0)
        adaptive.on_repair(now=50)
        assert adaptive.value == 19

    def test_repr_mentions_band(self):
        assert "band=[17, 31]" in repr(controller())


class TestSimulationIntegration:
    def test_adaptive_run_is_clean_and_deterministic(self):
        from repro.sim.config import SimulationConfig
        from repro.sim.engine import Simulation

        config = SimulationConfig(
            population=80,
            rounds=800,
            data_blocks=8,
            parity_blocks=8,
            repair_threshold=10,
            quota=24,
            seed=3,
            adaptive_thresholds=True,
        )
        first = Simulation(config)
        first_result = first.run()
        assert first.audit() == []
        second_result = Simulation(config).run()
        assert (
            first_result.metrics.total_repairs
            == second_result.metrics.total_repairs
        )

    def test_controllers_attached_to_every_peer(self):
        from repro.sim.config import SimulationConfig
        from repro.sim.engine import Simulation

        config = SimulationConfig(
            population=30,
            rounds=100,
            data_blocks=8,
            parity_blocks=8,
            repair_threshold=10,
            quota=24,
            adaptive_thresholds=True,
        )
        simulation = Simulation(config)
        simulation.run()
        for peer in simulation.population.alive_normal_peers():
            assert peer.adaptive is not None
