"""End-to-end tests of the figure drivers at a test-sized scale.

These are the executable versions of DESIGN.md section 8 ("expected
shapes"): each driver runs a miniature sweep and its shape check must
pass.
"""

import pytest

#: Miniature sweeps still cost tens of seconds each; the CI smoke lane
#: (-m "not slow") skips this module and the full tier-1 job runs it.
pytestmark = pytest.mark.slow

from repro.experiments.ablation_adaptive import (
    check_shape as check_a5,
    run_ablation_adaptive,
)
from repro.experiments.ablation_grace import run_ablation_grace
from repro.experiments.ablation_proactive import run_ablation_proactive
from repro.experiments.ablation_quota import run_ablation_quota
from repro.experiments.ablation_selection import (
    check_shape as check_a1,
    run_ablation_selection,
)
from repro.experiments.common import ExperimentScale
from repro.experiments.fidelity_compare import (
    check_shape as check_fidelity,
    run_fidelity_compare,
)
from repro.experiments.fig1_repairs_by_threshold import (
    check_shape as check_fig1,
    run_figure1,
)
from repro.experiments.fig2_losses_by_threshold import run_figure2
from repro.experiments.fig3_observer_repairs import (
    check_shape as check_fig3,
    run_figure3,
)
from repro.experiments.fig4_cumulative_losses import (
    check_shape as check_fig4,
    run_figure4,
)

#: Smaller than QUICK: the test suite must stay fast.  The code width
#: stays at n = 32 (narrower codes lose the stratification signal in
#: placement luck) but the population, horizon and seed count shrink.
#: 240 peers is the floor where figure 3's age stratification stays
#: readable: below that, the observers' archives hover at the repair
#: threshold and single recruitment streaks dominate the totals.
TEST_SCALE = ExperimentScale(
    name="quick",  # reuse the lenient shape thresholds
    population=240,
    rounds=3000,
    data_blocks=16,
    parity_blocks=16,
    time_scale=0.12,
    seeds=(0, 1),
)


@pytest.fixture(scope="module")
def fig1_result():
    return run_figure1(scale=TEST_SCALE, paper_thresholds=(132, 148, 180))


@pytest.fixture(scope="module")
def fig3_result():
    return run_figure3(scale=TEST_SCALE)


class TestFigure1:
    def test_sweep_covers_mapped_thresholds(self, fig1_result):
        assert len(fig1_result.thresholds) >= 2

    def test_shape_checks_pass(self, fig1_result):
        assert check_fig1(fig1_result) == []

    def test_rates_increase_with_threshold(self, fig1_result):
        lowest = fig1_result.thresholds[0]
        highest = fig1_result.thresholds[-1]
        total_low = sum(
            fig1_result.rates[lowest][c].mean for c in fig1_result.categories
        )
        total_high = sum(
            fig1_result.rates[highest][c].mean for c in fig1_result.categories
        )
        assert total_high > total_low

    def test_render_produces_table_and_chart(self, fig1_result):
        text = fig1_result.render()
        assert "threshold" in text
        assert "legend:" in text


class TestFigure2:
    def test_runs_and_renders(self):
        result = run_figure2(scale=TEST_SCALE, paper_thresholds=(132, 180))
        assert "Figure 2" in result.render()
        for threshold in result.thresholds:
            for category in result.categories:
                assert result.rates[threshold][category].mean >= 0


class TestFigure3:
    def test_all_observers_present(self, fig3_result):
        assert set(fig3_result.observer_names) == {
            "Elder", "Senior", "Adult", "Teenager", "Baby",
        }

    def test_shape_checks_pass(self, fig3_result):
        assert check_fig3(fig3_result) == []

    def test_series_are_cumulative(self, fig3_result):
        for name, series in fig3_result.series().items():
            values = [v for _, v in series]
            assert values == sorted(values), name

    def test_render(self, fig3_result):
        assert "Baby" in fig3_result.render()


class TestFigure4:
    def test_runs_and_checks(self):
        result = run_figure4(scale=TEST_SCALE)
        assert check_fig4(result) == []
        finals = result.final_losses()
        assert set(finals) == set(result.categories)

    def test_series_non_negative(self):
        result = run_figure4(scale=TEST_SCALE)
        for series in result.series().values():
            assert all(v >= 0 for _, v in series)


class TestFidelityCompare:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fidelity_compare(scale=TEST_SCALE, seeds=(0,))

    def test_both_fidelities_present(self, result):
        assert set(result.by_fidelity) == {"abstract", "protocol"}

    def test_shape_checks_pass(self, result):
        assert check_fidelity(result) == []

    def test_protocol_extras_reported(self, result):
        extras = result.protocol_extras()
        assert extras["transfers_completed"] > 0
        assert extras["messages_sent"] > 0

    def test_render_compares_side_by_side(self, result):
        text = result.render()
        assert "abstract" in text and "protocol" in text
        assert "protocol metric" in text
        assert "legend:" in text

    def test_csv_has_one_column_per_fidelity(self, result):
        header = result.to_csv().splitlines()[0]
        assert header == "round,abstract,protocol"


class TestAblations:
    def test_selection_ablation(self):
        result = run_ablation_selection(
            scale=TEST_SCALE, strategies=("age", "random"), seeds=(0,)
        )
        assert [o.strategy for o in result.outcomes] == ["age", "random"]
        assert check_a1(result) == []
        assert "A1" in result.render()

    def test_quota_ablation(self):
        result = run_ablation_quota(
            scale=TEST_SCALE, quota_factors=(1.0, 2.0), seeds=(0,)
        )
        rows = result.rows()
        assert len(rows) == 2
        # Tighter quota cannot make starvation rarer.
        starved_tight, starved_loose = rows[0][4], rows[1][4]
        assert starved_tight >= starved_loose
        assert "A2" in result.render()

    def test_grace_ablation(self):
        result = run_ablation_grace(scale=TEST_SCALE, graces=(0, 24), seeds=(0,))
        rows = result.rows()
        assert len(rows) == 2
        # A grace period can only reduce regenerated blocks.
        assert rows[1][2] <= rows[0][2]
        assert "A3" in result.render()

    def test_proactive_ablation(self):
        result = run_ablation_proactive(
            scale=TEST_SCALE, safety_factors=(0.0, 1.0), seeds=(0,)
        )
        rows = result.rows()
        assert len(rows) == 2
        assert result.estimated_rate > 0
        # Proactive top-ups cannot increase reactive repairs.
        assert rows[1][2] <= rows[0][2]
        assert "A4" in result.render()

    def test_adaptive_ablation(self):
        result = run_ablation_adaptive(scale=TEST_SCALE, seeds=(0,))
        rows = {row[0] for row in result.rows()}
        assert rows == {"static", "adaptive"}
        # At this miniature scale total losses are single-digit rare
        # events, so the static-vs-adaptive comparison needs slack; the
        # strict check runs at QUICK scale in bench_ablation_adaptive.
        assert check_a5(result, loss_tolerance=4.0) == []
        assert "A5" in result.render()
