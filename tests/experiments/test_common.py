"""Tests for experiment scales and the parameter mappings."""

import pytest

from repro.core.acceptance import DEFAULT_AGE_CAP
from repro.experiments.common import (
    DEFAULT,
    FULL,
    PAPER_FOCUS_THRESHOLD,
    PAPER_THRESHOLDS,
    QUICK,
    ExperimentScale,
    scale_by_name,
    scaled_profiles,
)


class TestPresets:
    def test_all_presets_resolvable(self):
        for preset in (QUICK, DEFAULT, FULL):
            assert scale_by_name(preset.name) is preset

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            scale_by_name("galactic")

    def test_full_scale_is_the_paper(self):
        assert FULL.population == 25_000
        assert FULL.rounds == 50_000
        assert FULL.data_blocks == 128
        assert FULL.time_scale == 1.0
        config = FULL.config()
        assert config.repair_threshold == PAPER_FOCUS_THRESHOLD
        assert config.quota == 384
        assert config.age_cap == DEFAULT_AGE_CAP

    def test_paper_threshold_range(self):
        assert PAPER_THRESHOLDS[0] == 132
        assert PAPER_THRESHOLDS[-1] == 180
        assert 148 in PAPER_THRESHOLDS


class TestScaledProfiles:
    def test_identity_at_full_scale(self):
        from repro.churn.profiles import PAPER_PROFILES

        assert scaled_profiles(1.0) is PAPER_PROFILES

    def test_proportions_and_availability_preserved(self):
        for original, scaled in zip(scaled_profiles(1.0), scaled_profiles(0.25)):
            assert scaled.proportion == original.proportion
            assert scaled.availability == original.availability
            assert scaled.name == original.name

    def test_lifetimes_shrink(self):
        scaled = scaled_profiles(0.5)
        stable = next(p for p in scaled if p.name == "Stable")
        assert stable.life_expectancy[0] == int(13140 * 0.5)

    def test_durable_stays_unlimited(self):
        scaled = scaled_profiles(0.1)
        durable = next(p for p in scaled if p.name == "Durable")
        assert durable.life_expectancy is None

    def test_extreme_shrink_still_valid(self):
        for profile in scaled_profiles(0.01):
            if profile.life_expectancy:
                low, high = profile.life_expectancy
                assert 0 < low <= high

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scaled_profiles(0)


class TestExperimentScale:
    def test_threshold_mapping_preserves_slack(self):
        # Both presets use a k=16, n=32 code: 148's slack fraction
        # (20/128) maps to 16 + round(2.5) = 18.
        assert DEFAULT.threshold(148) == 18
        assert QUICK.threshold(148) == 18

    def test_thresholds_deduplicated_and_sorted_like_input(self):
        mapped = QUICK.thresholds()
        assert len(mapped) == len(set(mapped))
        assert list(mapped) == sorted(mapped)

    def test_age_cap_scales(self):
        assert QUICK.age_cap == int(DEFAULT_AGE_CAP * QUICK.time_scale)
        assert FULL.age_cap == DEFAULT_AGE_CAP

    def test_categories_scale(self):
        scaled = QUICK.categories()
        assert scaled.names() == [
            "Newcomers", "Young peers", "Old peers", "Elder peers",
        ]
        newcomer = scaled.categories[0]
        assert newcomer.upper < 2160  # shrunk from 3 months

    def test_observers_scale(self):
        observers = {spec.name: spec.fixed_age for spec in QUICK.observers()}
        assert observers["Baby"] == 1
        assert observers["Elder"] < 2160

    def test_config_is_valid_and_consistent(self):
        config = QUICK.config(paper_threshold=148, with_observers=True)
        assert config.population == QUICK.population
        assert config.observers
        assert config.quota == int(QUICK.total_blocks * 1.5)
        config.policy()  # must validate

    def test_config_seed_override(self):
        assert QUICK.config(seed=42).seed == 42

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale("x", 0, 10, 8, 8, 0.5, (0,))
        with pytest.raises(ValueError):
            ExperimentScale("x", 10, 10, 8, 8, 1.5, (0,))
        with pytest.raises(ValueError):
            ExperimentScale("x", 10, 10, 8, 8, 0.5, ())
