"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.runner import build_executor, build_parser, main


class TestParser:
    def test_tables_command_parses(self):
        args = build_parser().parse_args(["tables"])
        assert args.experiment == "tables"

    def test_scale_and_seeds(self):
        args = build_parser().parse_args(
            ["fig1", "--scale", "quick", "--seeds", "1", "2", "--markdown"]
        )
        assert args.scale == "quick"
        assert args.seeds == [1, 2]
        assert args.markdown

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_executor_flags_default(self):
        args = build_parser().parse_args(["fig1"])
        assert args.workers == 1
        assert args.cache_dir == ".repro-cache"
        assert not args.no_cache

    def test_executor_flags_parse(self):
        args = build_parser().parse_args(
            ["fig1", "--workers", "4", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache

    def test_build_executor_honours_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["fig1", "--workers", "3", "--cache-dir", str(tmp_path)]
        )
        executor = build_executor(args)
        assert executor.workers == 3
        assert executor.cache is not None
        assert str(executor.cache.root) == str(tmp_path)

    def test_build_executor_no_cache(self):
        args = build_parser().parse_args(["fig1", "--no-cache"])
        assert build_executor(args).cache is None

    def test_all_experiments_registered(self):
        parser = build_parser()
        for name in (
            "fig1", "fig2", "fig3", "fig4", "fig-fidelity",
            "ablation-selection", "ablation-quota",
            "ablation-grace", "ablation-proactive",
            "tables", "all", "list", "run",
        ):
            assert parser.parse_args([name]).experiment == name

    def test_scenario_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--scenario", "flash_crowd",
             "--population", "100", "--rounds", "500"]
        )
        assert args.scenario == "flash_crowd"
        assert args.population == 100
        assert args.rounds == 500


class TestMain:
    def test_tables_exit_code(self, capsys):
        assert main(["tables"]) == 0
        output = capsys.readouterr().out
        assert "T1" in output and "C1" in output

    def test_csv_dir_option_parses(self):
        args = build_parser().parse_args(["fig1", "--csv-dir", "/tmp/x"])
        assert args.csv_dir == "/tmp/x"

    def test_tables_markdown(self, capsys):
        assert main(["tables", "--markdown"]) == 0
        assert "|" in capsys.readouterr().out

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            main(["fig1", "--scale", "cosmic"])


class TestListCommand:
    def test_lists_every_registry(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "scenarios:" in output
        assert "selection strategies:" in output
        assert "acceptance rules:" in output
        assert "codec backends:" in output
        assert "churn mixes:" in output
        assert "execution backends:" in output
        assert "fidelity backends:" in output
        assert "link profiles:" in output
        assert "lifetime models:" in output
        assert "repair-policy presets:" in output
        for name in ("flash_crowd", "diurnal", "correlated_outage",
                     "heterogeneous_quota", "slow_decay",
                     "constrained_uplink", "unfair_freeriders"):
            assert name in output

    def test_lists_execution_and_fidelity_backend_names(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("serial", "process", "distributed"):
            assert f"  {name}" in output
        assert "  abstract (default)" in output
        assert "  protocol" in output
        assert "  paper-dsl" in output


class TestRunCommand:
    def test_scenario_flags_rejected_outside_run(self):
        for argv in (
            ["fig1", "--scenario", "flash_crowd"],
            ["tables", "--population", "100"],
            ["all", "--rounds", "500"],
        ):
            with pytest.raises(SystemExit):
                main(argv)

    def test_run_requires_scenario(self, capsys):
        assert main(["run", "--no-cache"]) == 2
        assert "flash_crowd" in capsys.readouterr().out

    def test_run_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            main(["run", "--scenario", "apocalypse", "--no-cache"])

    def test_run_scenario_end_to_end(self, capsys):
        code = main([
            "run", "--scenario", "flash_crowd",
            "--population", "60", "--rounds", "200", "--no-cache",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "scenario flash_crowd" in output
        assert "repairs=" in output
        assert "[executor]" in output

    def test_profile_flags_rejected_outside_profile(self):
        for argv in (
            ["fig1", "--sort", "tottime"],
            ["run", "--scenario", "paper", "--limit", "5"],
        ):
            with pytest.raises(SystemExit):
                main(argv)

    def test_profile_requires_scenario(self, capsys):
        assert main(["profile"]) == 2
        assert "paper" in capsys.readouterr().out

    def test_profile_scenario_end_to_end(self, capsys):
        code = main([
            "profile", "--scenario", "paper",
            "--population", "50", "--rounds", "150",
            "--sort", "tottime", "--limit", "5",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "scenario paper" in output
        assert "cumtime" in output  # pstats table header
        assert "[profile]" in output

    @pytest.mark.parametrize("fidelity", ["abstract", "abstract_soa"])
    def test_profile_reports_per_kind_breakdown(self, capsys, fidelity):
        code = main([
            "profile", "--scenario", "paper",
            "--population", "50", "--rounds", "200",
            "--fidelity", fidelity, "--limit", "3",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "per-event-kind share" in output
        # The workload's staple kinds must be attributed on both
        # backends, with dispatch counts and a loop remainder line.
        assert "toggle" in output
        assert "check" in output
        assert "dispatches)" in output
        assert "(loop)" in output

    def test_profile_breakdown_includes_transfer_share(self, capsys):
        code = main([
            "profile", "--scenario", "paper",
            "--population", "60", "--rounds", "300",
            "--fidelity", "protocol", "--limit", "3",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "per-event-kind share" in output
        assert "transfer" in output

    def test_fidelity_flag_parses(self):
        args = build_parser().parse_args(
            ["run", "--scenario", "paper", "--fidelity", "protocol"]
        )
        assert args.fidelity == "protocol"

    def test_unknown_fidelity_raises_with_choices(self):
        with pytest.raises(ValueError) as excinfo:
            main(["run", "--scenario", "paper", "--fidelity", "quantum",
                  "--population", "50", "--rounds", "100", "--no-cache"])
        assert "protocol" in str(excinfo.value)

    def test_run_scenario_protocol_fidelity_end_to_end(self, capsys):
        code = main([
            "run", "--scenario", "paper", "--fidelity", "protocol",
            "--population", "60", "--rounds", "200", "--no-cache",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "fidelity=protocol" in output
        assert "repairs=" in output

    def test_fidelity_flag_rejected_outside_scenario_commands(self):
        with pytest.raises(SystemExit):
            main(["fig1", "--fidelity", "protocol"])

    def test_run_scenario_uses_cache(self, capsys, tmp_path):
        argv = [
            "run", "--scenario", "slow_decay",
            "--population", "60", "--rounds", "200",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        second = capsys.readouterr().out.rsplit("[executor]", 1)[1]
        assert "1 from cache" in second


class TestDistributedCLI:
    def test_backend_flags_parse(self):
        args = build_parser().parse_args(
            ["all", "--backend", "distributed",
             "--worker-id", "host1", "--lease-ttl", "5"]
        )
        assert args.backend == "distributed"
        assert args.worker_id == "host1"
        assert args.lease_ttl == 5.0

    def test_backend_defaults_to_auto(self):
        args = build_parser().parse_args(["fig1"])
        assert args.backend is None
        assert args.worker_id is None
        assert args.lease_ttl is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["all", "--backend", "carrier-pigeon"])

    def test_build_executor_passes_backend(self, tmp_path):
        args = build_parser().parse_args(
            ["all", "--backend", "distributed", "--cache-dir", str(tmp_path)]
        )
        executor = build_executor(args)
        assert executor.backend_name == "distributed"

    def test_distributed_without_cache_rejected(self, tmp_path):
        # A clean CLI error, not a SweepExecutor traceback.
        args = build_parser().parse_args(
            ["all", "--backend", "distributed", "--no-cache"]
        )
        with pytest.raises(SystemExit) as error:
            build_executor(args)
        assert "--no-cache" in str(error.value)

    def test_run_scenario_distributed_end_to_end(self, capsys, tmp_path):
        code = main([
            "run", "--scenario", "slow_decay",
            "--population", "60", "--rounds", "200",
            "--cache-dir", str(tmp_path), "--backend", "distributed",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "1 simulated" in output
        # The distributed run published through the shared cache; a
        # serial re-run over the same cache resolves without simulating.
        code = main([
            "run", "--scenario", "slow_decay",
            "--population", "60", "--rounds", "200",
            "--cache-dir", str(tmp_path),
        ])
        assert code == 0
        assert "1 from cache" in capsys.readouterr().out


class TestWorkerCommand:
    def test_worker_flags_parse(self, tmp_path):
        args = build_parser().parse_args(
            ["worker", "--scale", "quick", "--cache-dir", str(tmp_path),
             "--worker-id", "w7", "--experiments", "fig3", "fig4",
             "--seeds", "0", "1", "--lease-ttl", "10", "--workers", "4"]
        )
        assert args.experiment == "worker"
        assert args.scale == "quick"
        assert args.worker_id == "w7"
        assert args.experiments == ["fig3", "fig4"]
        assert args.seeds == [0, 1]
        assert args.lease_ttl == 10.0
        assert args.workers == 4

    def test_worker_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "--experiments", "fig9"])

    def test_worker_has_no_no_cache_flag(self):
        # A worker without a shared cache cannot publish anything.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker", "--no-cache"])

    @pytest.mark.slow
    def test_worker_drains_and_second_worker_finds_nothing(
        self, capsys, tmp_path
    ):
        argv = [
            "worker", "--scale", "quick", "--experiments", "fig4",
            "--cache-dir", str(tmp_path), "--worker-id", "w1",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "fig4: 2 cells" in first
        assert "2 simulated" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 simulated" in second
        # The published cells now serve the coordinating sweep too.
        assert main([
            "fig4", "--scale", "quick", "--cache-dir", str(tmp_path),
        ]) == 0
        coordinated = capsys.readouterr().out.rsplit("[executor]", 1)[1]
        assert "0 simulated" in coordinated


class TestSubcommandHelp:
    def test_every_command_has_an_example_epilog(self, capsys):
        for name in (
            "fig1", "fig2", "fig3", "fig4", "fig-fidelity",
            "ablation-selection",
            "ablation-quota", "ablation-grace", "ablation-proactive",
            "ablation-adaptive", "tables", "all", "list", "run",
            "profile", "worker",
        ):
            with pytest.raises(SystemExit) as exit_info:
                build_parser().parse_args([name, "--help"])
            assert exit_info.value.code == 0
            output = capsys.readouterr().out
            assert "example:" in output
            assert f"repro-experiments {name}" in output
