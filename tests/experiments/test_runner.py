"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.runner import build_executor, build_parser, main


class TestParser:
    def test_tables_command_parses(self):
        args = build_parser().parse_args(["tables"])
        assert args.experiment == "tables"

    def test_scale_and_seeds(self):
        args = build_parser().parse_args(
            ["fig1", "--scale", "quick", "--seeds", "1", "2", "--markdown"]
        )
        assert args.scale == "quick"
        assert args.seeds == [1, 2]
        assert args.markdown

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_executor_flags_default(self):
        args = build_parser().parse_args(["fig1"])
        assert args.workers == 1
        assert args.cache_dir == ".repro-cache"
        assert not args.no_cache

    def test_executor_flags_parse(self):
        args = build_parser().parse_args(
            ["fig1", "--workers", "4", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.workers == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache

    def test_build_executor_honours_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["fig1", "--workers", "3", "--cache-dir", str(tmp_path)]
        )
        executor = build_executor(args)
        assert executor.workers == 3
        assert executor.cache is not None
        assert str(executor.cache.root) == str(tmp_path)

    def test_build_executor_no_cache(self):
        args = build_parser().parse_args(["fig1", "--no-cache"])
        assert build_executor(args).cache is None

    def test_all_experiments_registered(self):
        parser = build_parser()
        for name in (
            "fig1", "fig2", "fig3", "fig4",
            "ablation-selection", "ablation-quota",
            "ablation-grace", "ablation-proactive",
            "tables", "all",
        ):
            assert parser.parse_args([name]).experiment == name


class TestMain:
    def test_tables_exit_code(self, capsys):
        assert main(["tables"]) == 0
        output = capsys.readouterr().out
        assert "T1" in output and "C1" in output

    def test_csv_dir_option_parses(self):
        args = build_parser().parse_args(["fig1", "--csv-dir", "/tmp/x"])
        assert args.csv_dir == "/tmp/x"

    def test_tables_markdown(self, capsys):
        assert main(["tables", "--markdown"]) == 0
        assert "|" in capsys.readouterr().out

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            main(["fig1", "--scale", "cosmic"])
