"""Tests pinning the paper's tables (T1-T4) and cost analysis (C1)."""

import pytest

from repro.experiments import tables


class TestT1SystemParameters:
    def test_exact_published_values(self):
        t1 = tables.t1_system_parameters()
        assert t1["Archive Size"] == "128 MB"
        assert t1["k (initial blocks)"] == 128
        assert t1["m (added blocks)"] == 128


class TestT2Profiles:
    def test_rows_match_section_411(self):
        t2 = tables.t2_profiles()
        assert t2["Durable"]["proportion"] == 0.10
        assert t2["Durable"]["availability"] == 0.95
        assert t2["Stable"]["proportion"] == 0.25
        assert t2["Unstable"]["availability"] == 0.75
        assert t2["Erratic"]["proportion"] == 0.35
        assert t2["Erratic"]["availability"] == 0.33


class TestT3Categories:
    def test_brackets_match_section_421(self):
        t3 = tables.t3_categories()
        assert t3["Newcomers"] == "0 - 2160 rounds"       # < 3 months
        assert t3["Young peers"] == "2160 - 4320 rounds"  # 3-6 months
        assert t3["Old peers"] == "4320 - 12960 rounds"   # 6-18 months
        assert t3["Elder peers"] == "> 12960 rounds"      # > 18 months


class TestT4Observers:
    def test_ages_match_section_422(self):
        t4 = tables.t4_observers()
        assert t4 == {
            "Elder": "3 month(s)",
            "Senior": "1 month(s)",
            "Adult": "1 week(s)",
            "Teenager": "1 day(s)",
            "Baby": "1 hour(s)",
        }


class TestC1Cost:
    def test_headline_numbers(self):
        c1 = tables.c1_cost_analysis()
        assert c1["download_seconds"] == pytest.approx(512.0)
        assert c1["worst_case_total_minutes"] == pytest.approx(76.8, abs=0.5)
        assert c1["max_repairs_per_day"] == 18

    def test_feasibility_32_archives_monthly(self):
        rows = tables.c1_feasibility_rows()
        by_archives = {row[0]: row for row in rows}
        # The paper: 32 archives (4 GB) => about one repair per month.
        assert by_archives[32][1] == 4096
        assert 28 <= by_archives[32][3] <= 36

    def test_feasibility_scales_linearly(self):
        rows = tables.c1_feasibility_rows()
        days = [row[3] for row in rows]
        assert days == sorted(days)


class TestRenderAll:
    def test_contains_every_section(self):
        text = tables.render_all()
        for marker in ("T1", "T2", "T3", "T4", "C1"):
            assert marker in text

    def test_markdown_mode(self):
        text = tables.render_all(markdown=True)
        assert "|" in text
