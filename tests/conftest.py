"""Shared fixtures for the test suite.

Simulation fixtures are deliberately tiny (hundreds of peers, thousands
of rounds at most) so the whole suite stays fast; the benchmark harness
owns the larger runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backup.client import BackupSwarm
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.sim.observers import scaled_observers


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_config() -> SimulationConfig:
    """A seconds-scale simulation config with small code parameters."""
    return SimulationConfig.scaled(
        population=120,
        rounds=1200,
        data_blocks=8,
        parity_blocks=8,
        seed=7,
    )


@pytest.fixture
def tiny_observer_config() -> SimulationConfig:
    """Tiny config with time-scaled observers planted."""
    return SimulationConfig.scaled(
        population=120,
        rounds=1200,
        data_blocks=8,
        parity_blocks=8,
        seed=7,
        observers=scaled_observers(0.05),
    )


@pytest.fixture
def finished_simulation(tiny_config) -> Simulation:
    """A completed tiny simulation (shared by metric/consistency tests)."""
    simulation = Simulation(tiny_config)
    simulation.run()
    return simulation


@pytest.fixture
def small_swarm() -> BackupSwarm:
    """A byte-level swarm with 12 nodes, one day old."""
    swarm = BackupSwarm(
        data_blocks=4, parity_blocks=4, quota_blocks=40, seed=5
    )
    for _ in range(12):
        swarm.add_node()
    swarm.tick(24)
    return swarm
