"""Tests for the consistent-hashing DHT."""

import pytest

from repro.net.dht import ConsistentHashRing, DhtError, MasterBlockDht
from repro.net.impairment import (
    ImpairmentOutcome,
    ScriptedImpairment,
    drop_schedule,
)


def scripted_sampler(*dropped: bool):
    """A deterministic sampler cycling the given drop flags."""
    profile = ScriptedImpairment(
        name="dht-script", script=drop_schedule(*dropped)
    )
    return profile.sampler(None)


class TestRing:
    def test_empty_ring_raises(self):
        with pytest.raises(DhtError):
            ConsistentHashRing().successors("key", 1)

    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing()
        ring.add_node(7)
        assert ring.successors("anything", 3) == [7]

    def test_successors_distinct(self):
        ring = ConsistentHashRing()
        for node in range(10):
            ring.add_node(node)
        owners = ring.successors("some-key", 4)
        assert len(owners) == 4
        assert len(set(owners)) == 4

    def test_placement_deterministic(self):
        a, b = ConsistentHashRing(), ConsistentHashRing()
        for node in range(8):
            a.add_node(node)
            b.add_node(node)
        for key in ("k1", "k2", "master-block/3"):
            assert a.successors(key, 3) == b.successors(key, 3)

    def test_add_idempotent(self):
        ring = ConsistentHashRing()
        ring.add_node(1)
        ring.add_node(1)
        assert len(ring) == 1

    def test_remove_idempotent(self):
        ring = ConsistentHashRing()
        ring.add_node(1)
        ring.remove_node(1)
        ring.remove_node(1)
        assert len(ring) == 0

    def test_removal_only_moves_affected_keys(self):
        ring = ConsistentHashRing()
        for node in range(12):
            ring.add_node(node)
        keys = [f"key-{i}" for i in range(60)]
        before = {key: ring.successors(key, 1)[0] for key in keys}
        ring.remove_node(5)
        moved = sum(
            1
            for key in keys
            if ring.successors(key, 1)[0] != before[key]
        )
        affected = sum(1 for key in keys if before[key] == 5)
        assert moved == affected

    def test_load_roughly_balanced(self):
        ring = ConsistentHashRing(virtual_nodes=32)
        for node in range(5):
            ring.add_node(node)
        counts = {node: 0 for node in range(5)}
        for i in range(2000):
            counts[ring.successors(f"key-{i}", 1)[0]] += 1
        assert min(counts.values()) > 2000 / 5 / 4  # no node starves


class TestMasterBlockDht:
    @pytest.fixture
    def dht(self):
        dht = MasterBlockDht(replication=3)
        for node in range(10):
            dht.join(node)
        return dht

    def test_put_get_roundtrip(self, dht):
        assert dht.put("k", b"value") == 3
        assert dht.get("k") == b"value"

    def test_get_missing_key(self, dht):
        assert dht.get("absent") is None

    def test_survives_replica_failures(self, dht):
        dht.put("k", b"v")
        holders = dht.replica_locations("k")
        for node in holders[:-1]:
            dht.set_online(node, False)
        assert dht.get("k") == b"v"

    def test_lost_when_all_replicas_offline(self, dht):
        dht.put("k", b"v")
        for node in dht.replica_locations("k"):
            dht.set_online(node, False)
        assert dht.get("k") is None

    def test_leave_destroys_replicas(self, dht):
        dht.put("k", b"v")
        for node in dht.replica_locations("k"):
            dht.leave(node)
        assert dht.get("k") is None

    def test_put_skips_offline_replicas(self, dht):
        holders = dht._ring.successors("k", 3)
        dht.set_online(holders[0], False)
        assert dht.put("k", b"v") == 2

    def test_put_with_no_online_holder_raises(self, dht):
        for node in dht._ring.successors("k", 3):
            dht.set_online(node, False)
        with pytest.raises(DhtError):
            dht.put("k", b"v")

    def test_overwrite(self, dht):
        dht.put("k", b"v1")
        dht.put("k", b"v2")
        assert dht.get("k") == b"v2"

    def test_set_online_unknown_node(self, dht):
        with pytest.raises(DhtError):
            dht.set_online(999, True)

    def test_validation(self):
        with pytest.raises(ValueError):
            MasterBlockDht(replication=0)
        with pytest.raises(ValueError):
            ConsistentHashRing(virtual_nodes=0)


class TestImpairedDht:
    """Behaviour under netem-style link impairment (ScriptedImpairment)."""

    @pytest.fixture
    def dht(self):
        dht = MasterBlockDht(replication=3)
        for node in range(10):
            dht.join(node)
        return dht

    def test_clean_sampler_changes_nothing(self, dht):
        dht.set_impairment(scripted_sampler(False, False, False))
        assert dht.put("k", b"v") == 3
        assert dht.get("k") == b"v"
        assert dht.dropped_contacts == 0

    def test_dropped_put_contact_skips_that_replica(self, dht):
        # First contact dropped, the remaining two delivered: the write
        # lands on exactly two of the three responsible holders.
        dht.set_impairment(scripted_sampler(True, False, False))
        assert dht.put("k", b"v") == 2
        assert len(dht.replica_locations("k")) == 2
        assert dht.dropped_contacts == 1

    def test_fully_dropped_put_raises(self, dht):
        dht.set_impairment(scripted_sampler(True))  # cycles: all dropped
        with pytest.raises(DhtError):
            dht.put("k", b"v")

    def test_dropped_get_falls_through_to_next_replica(self, dht):
        dht.put("k", b"v")  # pristine write: all three replicas placed
        dht.set_impairment(scripted_sampler(True, False))
        # First holder unreachable, second delivers.
        assert dht.get("k") == b"v"
        assert dht.dropped_contacts == 1

    def test_lookup_fails_while_every_contact_drops(self, dht):
        dht.put("k", b"v")
        dht.set_impairment(scripted_sampler(True))
        assert dht.get("k") is None
        # The outage is transient: clearing the sampler restores reads
        # (replicas were stored, only the links were down).
        dht.set_impairment(None)
        assert dht.get("k") == b"v"

    def test_impaired_write_then_clean_rewrite_re_replicates(self, dht):
        dht.set_impairment(scripted_sampler(True, True, False))
        assert dht.put("k", b"v") == 1
        dht.set_impairment(None)
        assert dht.put("k", b"v") == 3
        assert len(dht.replica_locations("k")) == 3

    def test_delay_accumulates_per_operation(self, dht):
        delayed = ScriptedImpairment(
            name="dht-delay",
            script=(
                ImpairmentOutcome(dropped=False, delay_seconds=0.25),
                ImpairmentOutcome(dropped=True),
                ImpairmentOutcome(dropped=False, delay_seconds=0.5),
            ),
        )
        dht.set_impairment(delayed.sampler(None))
        dht.put("k", b"v")  # contacts all 3 holders: 0.25 + drop + 0.5
        assert dht.last_op_delay_seconds == pytest.approx(0.75)
        assert dht.total_delay_seconds == pytest.approx(0.75)
        # The per-op accumulator resets; cumulative one keeps counting.
        assert dht.get("k") == b"v"  # first holder delivers at 0.25
        assert dht.last_op_delay_seconds == pytest.approx(0.25)
        assert dht.total_delay_seconds == pytest.approx(1.0)

    def test_contact_accounting(self, dht):
        dht.set_impairment(scripted_sampler(False, True))
        dht.put("k", b"v")  # three online holders -> three contacts
        assert dht.contacts == 3
        assert dht.dropped_contacts == 1

    def test_offline_nodes_cost_no_contacts(self, dht):
        holders = dht._ring.successors("k", 3)
        dht.set_online(holders[0], False)
        dht.set_impairment(scripted_sampler(False))
        assert dht.put("k", b"v") == 2
        # Only online holders are contacted (and sampled).
        assert dht.contacts == 2
