"""Tests for the consistent-hashing DHT."""

import pytest

from repro.net.dht import ConsistentHashRing, DhtError, MasterBlockDht


class TestRing:
    def test_empty_ring_raises(self):
        with pytest.raises(DhtError):
            ConsistentHashRing().successors("key", 1)

    def test_single_node_owns_everything(self):
        ring = ConsistentHashRing()
        ring.add_node(7)
        assert ring.successors("anything", 3) == [7]

    def test_successors_distinct(self):
        ring = ConsistentHashRing()
        for node in range(10):
            ring.add_node(node)
        owners = ring.successors("some-key", 4)
        assert len(owners) == 4
        assert len(set(owners)) == 4

    def test_placement_deterministic(self):
        a, b = ConsistentHashRing(), ConsistentHashRing()
        for node in range(8):
            a.add_node(node)
            b.add_node(node)
        for key in ("k1", "k2", "master-block/3"):
            assert a.successors(key, 3) == b.successors(key, 3)

    def test_add_idempotent(self):
        ring = ConsistentHashRing()
        ring.add_node(1)
        ring.add_node(1)
        assert len(ring) == 1

    def test_remove_idempotent(self):
        ring = ConsistentHashRing()
        ring.add_node(1)
        ring.remove_node(1)
        ring.remove_node(1)
        assert len(ring) == 0

    def test_removal_only_moves_affected_keys(self):
        ring = ConsistentHashRing()
        for node in range(12):
            ring.add_node(node)
        keys = [f"key-{i}" for i in range(60)]
        before = {key: ring.successors(key, 1)[0] for key in keys}
        ring.remove_node(5)
        moved = sum(
            1
            for key in keys
            if ring.successors(key, 1)[0] != before[key]
        )
        affected = sum(1 for key in keys if before[key] == 5)
        assert moved == affected

    def test_load_roughly_balanced(self):
        ring = ConsistentHashRing(virtual_nodes=32)
        for node in range(5):
            ring.add_node(node)
        counts = {node: 0 for node in range(5)}
        for i in range(2000):
            counts[ring.successors(f"key-{i}", 1)[0]] += 1
        assert min(counts.values()) > 2000 / 5 / 4  # no node starves


class TestMasterBlockDht:
    @pytest.fixture
    def dht(self):
        dht = MasterBlockDht(replication=3)
        for node in range(10):
            dht.join(node)
        return dht

    def test_put_get_roundtrip(self, dht):
        assert dht.put("k", b"value") == 3
        assert dht.get("k") == b"value"

    def test_get_missing_key(self, dht):
        assert dht.get("absent") is None

    def test_survives_replica_failures(self, dht):
        dht.put("k", b"v")
        holders = dht.replica_locations("k")
        for node in holders[:-1]:
            dht.set_online(node, False)
        assert dht.get("k") == b"v"

    def test_lost_when_all_replicas_offline(self, dht):
        dht.put("k", b"v")
        for node in dht.replica_locations("k"):
            dht.set_online(node, False)
        assert dht.get("k") is None

    def test_leave_destroys_replicas(self, dht):
        dht.put("k", b"v")
        for node in dht.replica_locations("k"):
            dht.leave(node)
        assert dht.get("k") is None

    def test_put_skips_offline_replicas(self, dht):
        holders = dht._ring.successors("k", 3)
        dht.set_online(holders[0], False)
        assert dht.put("k", b"v") == 2

    def test_put_with_no_online_holder_raises(self, dht):
        for node in dht._ring.successors("k", 3):
            dht.set_online(node, False)
        with pytest.raises(DhtError):
            dht.put("k", b"v")

    def test_overwrite(self, dht):
        dht.put("k", b"v1")
        dht.put("k", b"v2")
        assert dht.get("k") == b"v2"

    def test_set_online_unknown_node(self, dht):
        with pytest.raises(DhtError):
            dht.set_online(999, True)

    def test_validation(self):
        with pytest.raises(ValueError):
            MasterBlockDht(replication=0)
        with pytest.raises(ValueError):
            ConsistentHashRing(virtual_nodes=0)
