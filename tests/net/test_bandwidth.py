"""Tests for the section 2.2.4 cost model — pinned to the paper's numbers —
and the link scheduler the protocol fidelity backend gates transfers with."""

import pytest

from repro.net.bandwidth import (
    FTTH,
    KILOBYTE,
    LINK_PROFILES,
    MEGABYTE,
    MODERN_DSL,
    PAPER_DSL,
    CostModel,
    LinkProfile,
    LinkScheduler,
    paper_cost_table,
)


class TestLinkProfiles:
    def test_paper_dsl_rates(self):
        assert PAPER_DSL.download_bps == 256 * KILOBYTE
        assert PAPER_DSL.upload_bps == 32 * KILOBYTE

    def test_modern_dsl_is_four_times_faster(self):
        assert MODERN_DSL.download_bps == 4 * PAPER_DSL.download_bps
        assert MODERN_DSL.upload_bps == 4 * PAPER_DSL.upload_bps

    def test_ftth_symmetric(self):
        assert FTTH.download_bps == FTTH.upload_bps

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkProfile(download_bps=0, upload_bps=1)


class TestCostModel:
    def test_block_size_is_one_megabyte(self):
        model = CostModel()
        assert model.block_size == MEGABYTE

    def test_download_exceeds_512_seconds(self):
        """The paper: delta_download > 512 s on the reference DSL."""
        cost = CostModel().repair_cost(regenerated_blocks=0)
        assert cost.download_seconds == pytest.approx(512.0)

    def test_upload_is_32_seconds_per_block(self):
        """The paper: delta_upload > d x 32 s."""
        model = CostModel()
        one = model.repair_cost(1).upload_seconds
        assert one == pytest.approx(32.0)

    def test_worst_case_repair_is_77_minutes(self):
        """The paper: 'a total repair time should last 69+8 = 77 minutes'."""
        cost = CostModel().repair_cost(regenerated_blocks=128)
        assert cost.total_minutes == pytest.approx(76.8, abs=0.5)
        # Upload dominates ('most of which is taken by the upload').
        assert cost.upload_seconds > cost.download_seconds

    def test_max_repairs_per_day_about_20(self):
        """The paper: 'no more than 20 repair operations per day'."""
        per_day = CostModel().max_repairs_per_day(128)
        assert 18 <= per_day <= 20

    def test_32_archives_need_monthly_repair_rate(self):
        """The paper: with 32 archives and a one-repair-per-day budget,
        'the repair rate should be less than one per month approximatively'."""
        model = CostModel()
        budget = 1.0 / model.max_repairs_per_day(128)  # one repair/day of link
        rate = model.feasible_repair_rate(32, 128, budget_fraction=budget)
        days_between = 1.0 / rate
        assert 28 <= days_between <= 36

    def test_backup_cost(self):
        # 256 blocks of 1 MB at 32 kB/s = 8192 s.
        model = CostModel()
        assert model.backup_cost_seconds(256) == pytest.approx(8192.0)

    def test_restore_cost_equals_download(self):
        model = CostModel()
        assert model.restore_cost_seconds() == pytest.approx(512.0)

    def test_modern_dsl_is_four_times_cheaper(self):
        paper = CostModel(link=PAPER_DSL).repair_cost(128).total_seconds
        modern = CostModel(link=MODERN_DSL).repair_cost(128).total_seconds
        assert paper / modern == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(archive_size=0)
        with pytest.raises(ValueError):
            CostModel(data_blocks=0)
        model = CostModel()
        with pytest.raises(ValueError):
            model.repair_cost(-1)
        with pytest.raises(ValueError):
            model.feasible_repair_rate(0, 10)
        with pytest.raises(ValueError):
            model.feasible_repair_rate(1, 10, budget_fraction=0)
        with pytest.raises(ValueError):
            model.backup_cost_seconds(10)


class TestLinkProfileRegistry:
    def test_builtin_profiles_registered(self):
        assert LINK_PROFILES.get("paper-dsl") is PAPER_DSL
        assert LINK_PROFILES.get("modern-dsl") is MODERN_DSL
        assert LINK_PROFILES.get("ftth") is FTTH

    def test_unknown_profile_lists_choices(self):
        with pytest.raises(ValueError) as excinfo:
            LINK_PROFILES.get("carrier-pigeon")
        assert "paper-dsl" in str(excinfo.value)


class TestLinkScheduler:
    def test_idle_link_starts_immediately(self):
        scheduler = LinkScheduler(round_seconds=3600)
        transfer = scheduler.schedule(1, seconds=100.0, now_round=2)
        assert transfer.start_second == 2 * 3600
        assert transfer.finish_second == 2 * 3600 + 100
        assert transfer.queue_delay(2 * 3600) == 0.0

    def test_busy_link_queues(self):
        scheduler = LinkScheduler(round_seconds=3600)
        first = scheduler.schedule(1, seconds=5000.0, now_round=0)
        second = scheduler.schedule(1, seconds=1000.0, now_round=0)
        assert second.start_second == first.finish_second
        assert second.queue_delay(0.0) == 5000.0

    def test_links_are_independent(self):
        scheduler = LinkScheduler(round_seconds=3600)
        scheduler.schedule(1, seconds=50_000.0, now_round=0)
        other = scheduler.schedule(2, seconds=10.0, now_round=0)
        assert other.queue_delay(0.0) == 0.0

    def test_finish_round_is_at_least_next_round(self):
        scheduler = LinkScheduler(round_seconds=3600)
        quick = scheduler.schedule(1, seconds=1.0, now_round=4)
        assert scheduler.finish_round(quick, 4) == 5
        slow = scheduler.schedule(2, seconds=2 * 3600 + 1.0, now_round=4)
        assert scheduler.finish_round(slow, 4) == 7

    def test_complete_trims_active_index(self):
        scheduler = LinkScheduler()
        transfer = scheduler.schedule(1, seconds=10.0, now_round=0)
        assert scheduler.in_flight() == 1
        scheduler.complete(transfer)
        assert scheduler.in_flight() == 0
        scheduler.complete(transfer)  # idempotent

    def test_cancel_on_death_releases_capacity(self):
        """The churn satellite: a transfer in flight when its peer dies
        must cancel cleanly and release the link for the next user."""
        scheduler = LinkScheduler(round_seconds=3600)
        first = scheduler.schedule(1, seconds=50_000.0, now_round=0)
        second = scheduler.schedule(1, seconds=1000.0, now_round=0)
        assert second.queue_delay(0.0) > 0

        cancelled = scheduler.cancel_peer(1)
        assert cancelled == [first, second]
        assert all(transfer.cancelled for transfer in cancelled)
        assert scheduler.in_flight() == 0
        assert scheduler.busy_until(1) == 0.0

        # A fresh peer reusing the id (or the next transfer on the same
        # link) sees an idle link — no capacity leaked to the dead peer.
        fresh = scheduler.schedule(1, seconds=10.0, now_round=3)
        assert fresh.queue_delay(3 * 3600) == 0.0

    def test_cancel_unknown_peer_is_a_noop(self):
        assert LinkScheduler().cancel_peer(42) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkScheduler(round_seconds=0)
        with pytest.raises(ValueError):
            LinkScheduler().schedule(1, seconds=-1.0, now_round=0)


class TestPaperCostTable:
    def test_all_published_numbers(self):
        table = paper_cost_table()
        assert table["download_seconds"] == pytest.approx(512.0)
        assert table["upload_seconds_per_block"] == pytest.approx(32.0)
        assert table["worst_case_total_minutes"] == pytest.approx(76.8, abs=0.5)
        assert table["max_repairs_per_day"] == 18
        assert table["worst_case_upload_minutes"] > table[
            "worst_case_download_minutes"
        ]
