"""Tests for the protocol message vocabulary."""

import pytest

from repro.net.message import (
    AvailabilityProbe,
    AvailabilityReport,
    FetchReply,
    FetchRequest,
    Message,
    PartnershipAnswer,
    PartnershipProposal,
    ReleaseNotice,
    StoreReply,
    StoreRequest,
)


class TestBaseMessage:
    def test_sender_recipient_recorded(self):
        message = Message(sender=1, recipient=2)
        assert (message.sender, message.recipient) == (1, 2)

    def test_self_send_rejected(self):
        with pytest.raises(ValueError):
            Message(sender=3, recipient=3)

    def test_ids_monotonically_unique(self):
        ids = [Message(sender=1, recipient=2).message_id for _ in range(5)]
        assert len(set(ids)) == 5
        assert ids == sorted(ids)

    def test_messages_are_frozen(self):
        message = Message(sender=1, recipient=2)
        with pytest.raises(AttributeError):
            message.sender = 9


class TestPayloadMessages:
    def test_store_request_defaults(self):
        request = StoreRequest(sender=1, recipient=2)
        assert request.payload == b""
        assert request.block_index == 0

    def test_store_request_payload(self):
        request = StoreRequest(
            sender=1, recipient=2, archive_id="a", block_index=3,
            payload=b"\x00\x01",
        )
        assert request.payload == b"\x00\x01"

    def test_store_reply_reason(self):
        reply = StoreReply(
            sender=2, recipient=1, accepted=False, reason="quota full"
        )
        assert not reply.accepted
        assert reply.reason == "quota full"

    def test_fetch_round_trip_fields(self):
        request = FetchRequest(sender=1, recipient=2, archive_id="a", block_index=7)
        reply = FetchReply(
            sender=2, recipient=1, archive_id=request.archive_id,
            block_index=request.block_index, payload=b"data",
        )
        assert reply.archive_id == "a"
        assert reply.block_index == 7

    def test_fetch_miss_is_none_payload(self):
        reply = FetchReply(sender=2, recipient=1)
        assert reply.payload is None


class TestControlMessages:
    def test_partnership_proposal_carries_age(self):
        proposal = PartnershipProposal(sender=1, recipient=2, proposer_age=42.0)
        assert proposal.proposer_age == 42.0

    def test_partnership_answer_default_refuses(self):
        assert not PartnershipAnswer(sender=2, recipient=1).accepted

    def test_release_notice_fields(self):
        notice = ReleaseNotice(
            sender=1, recipient=2, archive_id="a", block_index=5
        )
        assert notice.block_index == 5

    def test_probe_and_report(self):
        probe = AvailabilityProbe(sender=1, recipient=2, window_rounds=2160)
        report = AvailabilityReport(
            sender=2, recipient=1, availability=0.87, observed_rounds=2160
        )
        assert probe.window_rounds == 2160
        assert report.availability == 0.87
