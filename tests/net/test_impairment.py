"""Tests for the netem-style impairment layer (PR 8).

Covers the fault-injection building blocks in isolation:

* profile validation and the registry of netem-mirroring presets;
* sampler semantics — iid loss, delay + jitter, Gilbert-Elliott burst
  correlation — as pure functions of the injected draw sequence;
* scripted profiles replaying deterministic drop schedules;
* transport integration: drops raise ``DroppedMessageError`` before any
  recipient-side effect, latency accumulates per round trip;
* LinkScheduler latency semantics: propagation delay defers completion
  without occupying the link, and block legs are priced at the pairwise
  gated rate ``min(sender uplink, receiver downlink)``.
"""

import pytest

from repro.net.bandwidth import CostModel, LinkProfile, LinkScheduler
from repro.net.impairment import (
    CLEAN_OUTCOME,
    IMPAIRMENT_PROFILES,
    ImpairmentOutcome,
    ImpairmentProfile,
    ScriptedImpairment,
    drop_schedule,
)
from repro.net.message import FetchReply, FetchRequest, ReleaseNotice
from repro.net.transport import DroppedMessageError, InMemoryTransport


class FakeDraws:
    """Replays a fixed uniform sequence (cycling), counting consumption."""

    def __init__(self, values):
        self.values = list(values)
        self.used = 0

    def next_uniform(self):
        value = self.values[self.used % len(self.values)]
        self.used += 1
        return value


class TestProfiles:
    def test_netem_matrix_presets_registered(self):
        names = IMPAIRMENT_PROFILES.names()
        for name in ("clean", "loss10", "delay10ms",
                     "loss30_delay50ms_jitter5ms", "satellite_burst"):
            assert name in names

    def test_clean_detection(self):
        assert IMPAIRMENT_PROFILES.get("clean").is_clean
        assert not IMPAIRMENT_PROFILES.get("loss10").is_clean
        assert not IMPAIRMENT_PROFILES.get("delay10ms").is_clean
        assert not IMPAIRMENT_PROFILES.get("satellite_burst").is_clean

    def test_probability_bounds_validated(self):
        with pytest.raises(ValueError):
            ImpairmentProfile(loss_probability=1.5)

    def test_jitter_wider_than_delay_rejected(self):
        with pytest.raises(ValueError):
            ImpairmentProfile(delay_seconds=0.01, jitter_seconds=0.02)

    def test_burst_state_needs_exit(self):
        with pytest.raises(ValueError):
            ImpairmentProfile(burst_enter=0.1, burst_exit=0.0)


class TestSampler:
    def test_iid_loss_follows_the_draw(self):
        profile = ImpairmentProfile(loss_probability=0.5)
        sampler = profile.sampler(FakeDraws([0.49, 0.51]))
        assert sampler.sample().dropped
        assert not sampler.sample().dropped

    def test_delay_and_jitter_consume_draws(self):
        profile = ImpairmentProfile(delay_seconds=0.05, jitter_seconds=0.01)
        draws = FakeDraws([0.0, 0.5, 1.0 - 1e-9])
        sampler = profile.sampler(draws)
        low = sampler.sample().delay_seconds
        mid = sampler.sample().delay_seconds
        high = sampler.sample().delay_seconds
        assert low == pytest.approx(0.04)
        assert mid == pytest.approx(0.05)
        assert high == pytest.approx(0.06, abs=1e-6)
        assert draws.used == 3  # no loss configured: one draw per sample

    def test_same_draws_same_outcomes(self):
        profile = IMPAIRMENT_PROFILES.get("loss30_delay50ms_jitter5ms")
        values = [0.7, 0.2, 0.9, 0.1, 0.5, 0.3, 0.8, 0.6]
        first = [profile.sampler(FakeDraws(values)).sample()
                 for _ in range(1)]
        runs = []
        for _ in range(2):
            sampler = profile.sampler(FakeDraws(values))
            runs.append([sampler.sample() for _ in range(6)])
        assert runs[0] == runs[1]
        assert first  # silence unused warning-by-intent

    def test_gilbert_elliott_burst_correlation(self):
        profile = ImpairmentProfile(
            loss_probability=0.0,
            burst_enter=1.0,
            burst_exit=0.001,
            burst_loss_probability=1.0,
        )
        # Transition draw 0.5 < enter=1.0 -> bad state; loss draw 0.5 <
        # burst loss 1.0 -> dropped; exit draw 0.9 >= 0.001 keeps the
        # burst alive, so the loss repeats: correlated, not iid.
        sampler = profile.sampler(FakeDraws([0.5, 0.5, 0.9, 0.5]))
        assert sampler.sample().dropped
        assert sampler.sample().dropped

    def test_good_state_uses_base_loss(self):
        profile = ImpairmentProfile(
            loss_probability=0.0,
            burst_enter=0.01,
            burst_exit=0.5,
            burst_loss_probability=1.0,
        )
        # Transition draw 0.9 >= enter: stays good; base loss is zero so
        # no loss draw is consumed and the exchange delivers.
        draws = FakeDraws([0.9])
        sampler = profile.sampler(draws)
        assert sampler.sample() == CLEAN_OUTCOME
        assert draws.used == 1


class TestScriptedProfile:
    def test_script_cycles(self):
        profile = ScriptedImpairment(
            name="scripted", script=drop_schedule(True, False)
        )
        sampler = profile.sampler(None)
        outcomes = [sampler.sample().dropped for _ in range(5)]
        assert outcomes == [True, False, True, False, True]

    def test_empty_script_rejected(self):
        with pytest.raises(ValueError):
            ScriptedImpairment(name="scripted", script=())

    def test_clean_detection_inspects_the_script(self):
        assert ScriptedImpairment(name="s", script=(CLEAN_OUTCOME,)).is_clean
        lossy = ScriptedImpairment(name="s", script=drop_schedule(True))
        assert not lossy.is_clean


class TestTransportIntegration:
    def _transport(self):
        transport = InMemoryTransport()
        received = []

        def handler(message):
            received.append(message)
            if isinstance(message, FetchRequest):
                return FetchReply(
                    sender=2,
                    recipient=message.sender,
                    archive_id=message.archive_id,
                    block_index=message.block_index,
                    payload=b"echo",
                )
            return None

        transport.register(1, lambda message: None)
        transport.register(2, handler)
        return transport, received

    def _fetch(self):
        return FetchRequest(sender=1, recipient=2, archive_id="a1",
                            block_index=0)

    def test_drop_raises_before_any_recipient_effect(self):
        transport, received = self._transport()
        profile = ScriptedImpairment(name="s", script=drop_schedule(True))
        transport.set_impairment(profile.sampler(None))
        with pytest.raises(DroppedMessageError):
            transport.send(self._fetch())
        assert received == []  # the handler never ran
        assert transport.dropped_messages == 1
        # The sender paid to transmit; the recipient saw nothing.
        assert transport.stats_for(1).messages_sent == 1
        assert transport.stats_for(2).messages_received == 0

    def test_try_send_swallows_drops(self):
        transport, _ = self._transport()
        profile = ScriptedImpairment(name="s", script=drop_schedule(True))
        transport.set_impairment(profile.sampler(None))
        assert transport.try_send(self._fetch()) is None

    def test_round_trip_latency_is_doubled(self):
        transport, _ = self._transport()
        profile = ScriptedImpairment(
            name="s",
            script=(ImpairmentOutcome(dropped=False, delay_seconds=0.05),),
        )
        transport.set_impairment(profile.sampler(None))
        reply = transport.send(self._fetch())
        assert isinstance(reply, FetchReply)
        assert transport.last_delay_seconds == pytest.approx(0.10)

    def test_one_way_latency_for_replyless_exchanges(self):
        transport, _ = self._transport()
        profile = ScriptedImpairment(
            name="s",
            script=(ImpairmentOutcome(dropped=False, delay_seconds=0.05),),
        )
        transport.set_impairment(profile.sampler(None))
        notice = ReleaseNotice(sender=1, recipient=2, archive_id="a1",
                               block_index=0)
        assert transport.send(notice) is None
        assert transport.last_delay_seconds == pytest.approx(0.05)

    def test_clearing_the_sampler_restores_the_perfect_link(self):
        transport, _ = self._transport()
        profile = ScriptedImpairment(name="s", script=drop_schedule(True))
        transport.set_impairment(profile.sampler(None))
        transport.set_impairment(None)
        assert transport.send(self._fetch()) is not None
        assert transport.last_delay_seconds == 0.0


class TestSchedulerLatency:
    def test_latency_defers_completion_not_the_link(self):
        links = LinkScheduler(round_seconds=3600.0)
        first = links.schedule(1, 100.0, 0, latency_seconds=30.0)
        assert first.link_release_second == pytest.approx(100.0)
        assert first.finish_second == pytest.approx(130.0)
        # The next transfer queues behind the bytes, not the latency.
        second = links.schedule(1, 50.0, 0)
        assert second.start_second == pytest.approx(100.0)
        assert links.busy_until(1) == pytest.approx(150.0)

    def test_negative_latency_rejected(self):
        links = LinkScheduler()
        with pytest.raises(ValueError):
            links.schedule(1, 10.0, 0, latency_seconds=-1.0)

    def test_latency_shifts_the_completion_round(self):
        links = LinkScheduler(round_seconds=100.0)
        plain = links.schedule(1, 150.0, 0)
        assert links.finish_round(plain, 0) == 2
        delayed = links.schedule(2, 150.0, 0, latency_seconds=60.0)
        assert links.finish_round(delayed, 0) == 3


class TestDownlinkGating:
    def test_gated_rate_is_the_uplink_on_asymmetric_dsl(self):
        model = CostModel()
        assert model.peer_transfer_bps == model.link.upload_bps
        assert model.block_transfer_seconds() == pytest.approx(
            model.block_size / model.link.upload_bps
        )

    def test_starved_downlink_gates_the_transfer(self):
        link = LinkProfile(
            download_bps=1024, upload_bps=8192, name="starved-down"
        )
        model = CostModel(archive_size=1024 * 128, data_blocks=128, link=link)
        assert model.peer_transfer_bps == 1024
        assert model.block_transfer_seconds() == pytest.approx(1.0)
