"""Tests for the in-memory transport."""

import pytest

from repro.net.message import FetchReply, FetchRequest, Message, StoreRequest
from repro.net.transport import (
    DepartedEndpointError,
    InMemoryTransport,
    OfflineEndpointError,
    TransportError,
    UnknownEndpointError,
)


def echo_handler(peer_id):
    def handle(message):
        if isinstance(message, FetchRequest):
            return FetchReply(
                sender=peer_id,
                recipient=message.sender,
                archive_id=message.archive_id,
                block_index=message.block_index,
                payload=b"echo",
            )
        return None

    return handle


@pytest.fixture
def transport():
    t = InMemoryTransport()
    t.register(1, echo_handler(1))
    t.register(2, echo_handler(2))
    return t


class TestRegistration:
    def test_len_counts_endpoints(self, transport):
        assert len(transport) == 2

    def test_unregister(self, transport):
        transport.unregister(2)
        assert len(transport) == 1
        with pytest.raises(TransportError):
            transport.send(FetchRequest(sender=1, recipient=2))

    def test_is_online(self, transport):
        assert transport.is_online(1)
        transport.set_online(1, False)
        assert not transport.is_online(1)
        assert not transport.is_online(99)

    def test_set_online_unknown_peer(self, transport):
        with pytest.raises(TransportError):
            transport.set_online(99, True)


class TestDelivery:
    def test_request_reply(self, transport):
        reply = transport.send(FetchRequest(sender=1, recipient=2, archive_id="a"))
        assert isinstance(reply, FetchReply)
        assert reply.payload == b"echo"
        assert reply.recipient == 1

    def test_unknown_recipient(self, transport):
        with pytest.raises(TransportError):
            transport.send(FetchRequest(sender=1, recipient=9))

    def test_unknown_sender(self, transport):
        with pytest.raises(TransportError):
            transport.send(FetchRequest(sender=9, recipient=1))

    def test_offline_recipient(self, transport):
        transport.set_online(2, False)
        with pytest.raises(TransportError):
            transport.send(FetchRequest(sender=1, recipient=2))

    def test_offline_sender(self, transport):
        transport.set_online(1, False)
        with pytest.raises(TransportError):
            transport.send(FetchRequest(sender=1, recipient=2))

    def test_try_send_swallows_failures(self, transport):
        transport.set_online(2, False)
        assert transport.try_send(FetchRequest(sender=1, recipient=2)) is None

    def test_try_send_success(self, transport):
        assert transport.try_send(FetchRequest(sender=1, recipient=2)) is not None

    def test_self_message_rejected(self):
        with pytest.raises(ValueError):
            Message(sender=1, recipient=1)


class TestAccounting:
    def test_payload_bytes_counted(self, transport):
        transport.send(
            StoreRequest(sender=1, recipient=2, archive_id="a", payload=b"x" * 100)
        )
        assert transport.stats_for(1).bytes_sent == 100
        assert transport.stats_for(2).bytes_received == 100

    def test_reply_bytes_counted_both_ways(self, transport):
        transport.send(FetchRequest(sender=1, recipient=2))
        # The 4-byte "echo" reply flows back to peer 1.
        assert transport.stats_for(2).bytes_sent == 4
        assert transport.stats_for(1).bytes_received == 4

    def test_message_counts(self, transport):
        transport.send(FetchRequest(sender=1, recipient=2))
        assert transport.stats_for(1).messages_sent == 1
        assert transport.stats_for(2).messages_received == 1
        assert transport.stats_for(2).messages_sent == 1  # the reply

    def test_stats_unknown_peer(self, transport):
        with pytest.raises(TransportError):
            transport.stats_for(42)

    def test_log_disabled_by_default(self, transport):
        transport.send(FetchRequest(sender=1, recipient=2))
        assert transport.log == []

    def test_log_records_when_enabled(self, transport):
        transport.record_log = True
        transport.send(FetchRequest(sender=1, recipient=2))
        assert len(transport.log) == 2  # request + reply


class TestTypedFailures:
    """Every delivery failure raises the precise TransportError subclass,
    and a departed peer is distinguishable from a bad address."""

    def test_departed_recipient_raises_departed_error(self, transport):
        transport.unregister(2)
        with pytest.raises(DepartedEndpointError):
            transport.send(FetchRequest(sender=1, recipient=2))

    def test_departed_sender_raises_departed_error(self, transport):
        transport.unregister(1)
        with pytest.raises(DepartedEndpointError):
            transport.send(FetchRequest(sender=1, recipient=2))

    def test_never_registered_raises_unknown_error(self, transport):
        with pytest.raises(UnknownEndpointError):
            transport.send(FetchRequest(sender=1, recipient=9))

    def test_offline_raises_offline_error(self, transport):
        transport.set_online(2, False)
        with pytest.raises(OfflineEndpointError):
            transport.send(FetchRequest(sender=1, recipient=2))

    def test_all_subclasses_are_transport_errors(self):
        for subclass in (
            DepartedEndpointError, UnknownEndpointError, OfflineEndpointError
        ):
            assert issubclass(subclass, TransportError)

    def test_set_online_distinguishes_departed(self, transport):
        transport.unregister(2)
        with pytest.raises(DepartedEndpointError):
            transport.set_online(2, True)
        with pytest.raises(UnknownEndpointError):
            transport.set_online(99, True)

    def test_stats_for_distinguishes_departed(self, transport):
        transport.unregister(2)
        with pytest.raises(DepartedEndpointError):
            transport.stats_for(2)
        with pytest.raises(UnknownEndpointError):
            transport.stats_for(42)

    def test_departed_peer_is_not_online(self, transport):
        transport.unregister(2)
        assert not transport.is_online(2)

    def test_try_send_swallows_departed(self, transport):
        transport.unregister(2)
        assert transport.try_send(FetchRequest(sender=1, recipient=2)) is None

    def test_reregistration_clears_departed_state(self, transport):
        transport.unregister(2)
        transport.register(2, echo_handler(2))
        reply = transport.send(FetchRequest(sender=1, recipient=2))
        assert isinstance(reply, FetchReply)


class TestMessageIds:
    def test_ids_are_unique(self):
        a = FetchRequest(sender=1, recipient=2)
        b = FetchRequest(sender=1, recipient=2)
        assert a.message_id != b.message_id
