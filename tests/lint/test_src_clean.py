"""The shipped tree satisfies its own invariants (the CI lint gate)."""

from repro.lint import LINT_RULES, run_lint
from repro.lint.engine import default_package_root, default_repo_root


class TestSrcClean:
    def test_src_repro_lints_clean(self):
        report = run_lint([default_package_root()])
        assert report.findings == [], report.render_text()
        assert report.warnings == [], report.render_text()
        assert report.rules == sorted(LINT_RULES.names())
        assert report.files > 50  # the whole package, not a subset

    def test_tests_and_benchmarks_advisory_clean(self):
        repo_root = default_repo_root()
        advisory = [
            path
            for path in (repo_root / "tests", repo_root / "benchmarks")
            if path.is_dir()
        ]
        report = run_lint(
            [default_package_root()], advisory_paths=advisory
        )
        assert report.findings == [], report.render_text()
        assert report.advisory == [], report.render_text()
