"""R003 failing fixture: constructing a registered class directly."""

from core.components import FixtureStrategy


def build():
    return FixtureStrategy()
