"""R003 passing fixture: resolution through the registry."""

from core.components import SELECTION_STRATEGIES


def build():
    return SELECTION_STRATEGIES.get("fixture")()
