"""R003 fixture support: a registry with one registered component."""

from repro.registry import Registry

SELECTION_STRATEGIES = Registry("selection strategy")


@SELECTION_STRATEGIES.register("fixture")
class FixtureStrategy:
    def choose(self, candidates):
        return candidates[0]
