"""Unused-suppression fixture: the comment excuses nothing."""


def add(a, b):
    return a + b  # replint: disable=R001
