"""R002 fixture: a miniature SimulationConfig with one gated key.

Compared against ``manifest_ok.json`` (which records ``extra_knob`` as
always-serialized) this is clean; against ``manifest_gated.json``
(which records it as fidelity-gated) the unconditional ``extra_knob``
line is exactly the guard-deletion R002 case.
"""

DEFAULT_FIDELITY = "abstract"


class SimulationConfig:
    population: int = 1000
    fidelity: str = DEFAULT_FIDELITY
    extra_knob: int = 3

    def to_dict(self):
        data = {"population": self.population}
        data["extra_knob"] = self.extra_knob
        if self.fidelity != DEFAULT_FIDELITY:
            data["fidelity"] = self.fidelity
        return data
