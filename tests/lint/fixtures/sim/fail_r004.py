"""R004 failing fixture: set iteration in order-sensitive scope."""


def drain(pending, peer_id, alive):
    for owner in pending.pop(peer_id, set()):
        yield owner
    for peer in alive | {0}:
        yield peer
    ordered = list({peer_id, 1, 2})
    return ordered
