"""R004 passing fixture: the same shapes, iterated in sorted order."""


def drain(pending, peer_id, alive):
    for owner in sorted(pending.pop(peer_id, ())):
        yield owner
    for peer in sorted(alive | {0}):
        yield peer
    ordered = sorted({peer_id, 1, 2})
    return ordered
