"""R005 passing fixture: integer rounds through the EventQueue API."""


def reschedule(queue, scheduler, now, interval, delay_seconds):
    queue.schedule(now + interval, "repair")
    queue.schedule(now + int(delay_seconds / 3600), "audit")
    queue.schedule(scheduler.round_for(delay_seconds / 3600), "transfer")
