"""Documentation-only marker fixture.

This docstring *mentions* the suppression syntax::

    # replint: disable=R001

but contains no live comment, so the engine must neither honour it nor
report it as unused.
"""


def add(a, b):
    return a + b
