"""Suppression fixture: a violation excused on its own line."""

import random  # replint: disable=R001


def draw():
    return random.random()  # replint: disable=R001
