"""R001 passing fixture: randomness through the blessed helpers only."""

import time

from repro.sim.rng import RngStreams, seeded_generator


def draw(seed):
    streams = RngStreams(seed)
    extra = seeded_generator(seed)
    started = time.perf_counter()  # perf timing is not simulation state
    return streams.stream("selection").random(), extra.random(), started
