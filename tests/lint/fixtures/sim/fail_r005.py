"""R005 failing fixture: heapq scheduling and float round arithmetic."""

import heapq


def reschedule(queue, now, interval):
    heapq.heappush(queue, now)
    queue.schedule(now + interval / 2, "repair")
    queue.schedule(now + 1.5, "audit")
