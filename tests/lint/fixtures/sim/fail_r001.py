"""R001 failing fixture: every banned randomness/clock source at once."""

import os
import random
import time

import numpy as np


def draw():
    value = random.random()
    jitter = np.random.default_rng()
    stamp = time.time()
    salt = os.urandom(8)
    return value, jitter, stamp, salt
