"""Suppression comments: honouring, staleness warnings, inert docstrings."""

from lint_corpus import lint_fixture


class TestSuppressions:
    def test_suppressed_violation_is_silent(self):
        report = lint_fixture("sim/suppressed_r001.py")
        assert report.findings == []
        assert report.warnings == []
        assert report.exit_code == 0

    def test_suppression_only_covers_named_rule(self):
        # The same file's suppressions name R001; with R001 disabled the
        # comments cover nothing and surface as W001.
        report = lint_fixture("sim/suppressed_r001.py", rules=["R004"])
        assert report.findings == []
        assert report.warnings == []  # R001 not enabled -> not stale either

    def test_unused_suppression_warns(self):
        report = lint_fixture("sim/unused_suppression.py")
        assert report.findings == []
        (warning,) = report.warnings
        assert warning.rule_id == "W001"
        assert warning.name == "unused-suppression"
        assert "R001" in warning.message
        assert warning.line == 5
        # Warnings are advisory: they never gate.
        assert report.exit_code == 0

    def test_docstring_marker_is_inert(self):
        report = lint_fixture("sim/docstring_marker.py")
        assert report.findings == []
        assert report.warnings == []
