"""R002's golden manifest: runtime cross-checks and the guard-deletion gate."""

import ast
import json
from dataclasses import fields as dataclass_fields

import pytest

from repro.lint import run_lint
from repro.lint.engine import default_package_root, default_schema_path
from repro.lint.schema import (
    extract_digest_schema,
    load_manifest,
    write_schema_manifest,
)
from repro.sim.config import DEFAULT_FIDELITY, SimulationConfig

CONFIG_PATH = default_package_root() / "sim" / "config.py"
SCHEMA_PATH = default_schema_path()


@pytest.fixture(scope="module")
def manifest():
    data = load_manifest(SCHEMA_PATH)
    assert data is not None, f"golden manifest missing at {SCHEMA_PATH}"
    return data


class TestManifestMatchesRuntime:
    """The static extraction agrees with the *live* serialization."""

    def test_fields_match_dataclass(self, manifest):
        live = sorted(f.name for f in dataclass_fields(SimulationConfig))
        assert manifest["dataclass_fields"] == live

    def test_abstract_to_dict_emits_exactly_the_always_keys(self, manifest):
        config = SimulationConfig.scaled()
        assert config.fidelity == DEFAULT_FIDELITY
        assert sorted(config.to_dict()) == manifest["always_serialized"]

    def test_protocol_to_dict_adds_exactly_the_gated_keys(self, manifest):
        config = SimulationConfig.scaled(fidelity="protocol")
        emitted = set(config.to_dict())
        always = set(manifest["always_serialized"])
        gated = set(manifest["conditionally_serialized"])
        assert emitted == always | gated

    def test_every_field_is_serialized_somewhere(self, manifest):
        serialized = set(manifest["always_serialized"]) | set(
            manifest["conditionally_serialized"]
        )
        assert serialized == set(manifest["dataclass_fields"])


class TestStaticExtraction:
    def test_extraction_matches_manifest(self, manifest):
        schema = extract_digest_schema(
            ast.parse(CONFIG_PATH.read_text(encoding="utf-8"))
        )
        assert schema is not None
        assert schema.to_manifest() == manifest

    def test_write_schema_round_trips(self, tmp_path, manifest):
        target = tmp_path / "digest_schema.json"
        written = write_schema_manifest(CONFIG_PATH, target)
        assert written == manifest
        assert json.loads(target.read_text(encoding="utf-8")) == manifest


class _GuardDeleter(ast.NodeTransformer):
    """Replace the fidelity guard in ``to_dict`` with its own body."""

    def __init__(self):
        self.deleted = False

    def visit_ClassDef(self, node):
        if node.name != "SimulationConfig":
            return node
        self.generic_visit(node)
        return node

    def visit_FunctionDef(self, node):
        if node.name != "to_dict":
            return node
        new_body = []
        for stmt in node.body:
            if (
                isinstance(stmt, ast.If)
                and isinstance(stmt.test, ast.Compare)
                and "fidelity" in ast.dump(stmt.test)
            ):
                new_body.extend(stmt.body)
                self.deleted = True
            else:
                new_body.append(stmt)
        node.body = new_body
        return node


class TestGuardDeletionGate:
    """The ISSUE-7 acceptance criterion, executed literally.

    Deleting the conditional-serialization guard on the protocol-only
    config fields must make R002 fail with a file:line pointing at the
    now-unconditional serialization.
    """

    def test_deleting_the_guard_fails_r002(self, tmp_path):
        tree = ast.parse(CONFIG_PATH.read_text(encoding="utf-8"))
        deleter = _GuardDeleter()
        tree = deleter.visit(tree)
        assert deleter.deleted, "fidelity guard not found in to_dict"
        mutated = tmp_path / "sim"
        mutated.mkdir()
        target = mutated / "config.py"
        target.write_text(ast.unparse(tree), encoding="utf-8")

        report = run_lint(
            [target],
            roots={tmp_path: tmp_path},
            repo_root=tmp_path,
            schema_path=SCHEMA_PATH,
        )
        r002 = [f for f in report.findings if f.rule_id == "R002"]
        assert r002, "R002 did not fire after guard deletion"
        assert report.exit_code == 1
        gated = {
            "fidelity",
            "link_profile",
            "round_seconds",
            "archive_bytes",
            "fairness_factor",
        }
        flagged = {
            key for f in r002 for key in gated if f"'{key}'" in f.message
        }
        assert flagged == gated
        for finding in r002:
            assert finding.path == "sim/config.py"
            assert finding.line > 1  # points at the serialization line
            assert "guard" in finding.message or "manifest" in finding.message

    def test_unmutated_config_is_clean(self, tmp_path):
        mirror = tmp_path / "sim"
        mirror.mkdir()
        target = mirror / "config.py"
        target.write_text(CONFIG_PATH.read_text(encoding="utf-8"))
        report = run_lint(
            [target],
            rules=["R002"],
            roots={tmp_path: tmp_path},
            repo_root=tmp_path,
            schema_path=SCHEMA_PATH,
        )
        assert report.findings == []
