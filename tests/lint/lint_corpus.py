"""Shared helpers for the replint tests: fixture-corpus lint runs."""

from pathlib import Path

from repro.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"

#: Manifest under which the fixture config is clean.
MANIFEST_OK = FIXTURES / "manifest_ok.json"

#: Manifest recording ``extra_knob`` as fidelity-gated — the fixture
#: config serializes it unconditionally, the guard-deletion R002 case.
MANIFEST_GATED = FIXTURES / "manifest_gated.json"


def lint_fixture(*relpaths, rules=None, schema=MANIFEST_OK, advisory=()):
    """Lint fixture files as their own mini-repo.

    ``repo_root`` is the fixtures directory, so ``sim/...`` fixtures
    carry the scope the rules key on (no leading ``tests/`` segment,
    which would put them out of scope for R003).
    """
    paths = [FIXTURES / rel for rel in relpaths]
    return run_lint(
        paths,
        rules=rules,
        advisory_paths=[FIXTURES / rel for rel in advisory],
        roots={FIXTURES: FIXTURES},
        repo_root=FIXTURES,
        schema_path=schema,
        graph_paths=[FIXTURES],
    )
