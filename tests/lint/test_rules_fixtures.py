"""Every rule demonstrated on the fixture corpus: one fail, one pass."""

import pytest

from lint_corpus import MANIFEST_GATED, MANIFEST_OK, lint_fixture

FAILING = {
    "R001": "sim/fail_r001.py",
    "R003": "core/fail_r003.py",
    "R004": "sim/fail_r004.py",
    "R005": "sim/fail_r005.py",
}

PASSING = {
    "R001": "sim/pass_r001.py",
    "R003": "core/pass_r003.py",
    "R004": "sim/pass_r004.py",
    "R005": "sim/pass_r005.py",
}


class TestFailingFixtures:
    @pytest.mark.parametrize("rule_id", sorted(FAILING))
    def test_rule_fires(self, rule_id):
        report = lint_fixture(FAILING[rule_id])
        fired = {f.rule_id for f in report.findings}
        assert rule_id in fired
        assert report.exit_code == 1

    @pytest.mark.parametrize("rule_id", sorted(FAILING))
    def test_findings_carry_location(self, rule_id):
        report = lint_fixture(FAILING[rule_id])
        for finding in report.findings:
            assert finding.path.endswith(".py")
            assert finding.line >= 1
            assert finding.message
            assert ":" in finding.location

    def test_r001_catches_each_source(self):
        report = lint_fixture("sim/fail_r001.py")
        messages = "\n".join(f.message for f in report.findings)
        assert "random" in messages
        assert "wall-clock" in messages
        assert "OS entropy" in messages
        assert "generator state" in messages
        assert len(report.findings) >= 5

    def test_r002_guard_deletion_fires_with_location(self):
        report = lint_fixture("sim/config.py", schema=MANIFEST_GATED)
        r002 = [f for f in report.findings if f.rule_id == "R002"]
        assert len(r002) == 1
        assert r002[0].path == "sim/config.py"
        # The finding anchors on the unconditional data["extra_knob"] line.
        assert "extra_knob" in r002[0].message
        assert "fidelity" in r002[0].message.lower()

    def test_r003_names_registry_and_module(self):
        report = lint_fixture("core/fail_r003.py")
        (finding,) = [f for f in report.findings if f.rule_id == "R003"]
        assert "FixtureStrategy" in finding.message
        assert "SELECTION_STRATEGIES" in finding.message

    def test_r004_flags_each_shape(self):
        report = lint_fixture("sim/fail_r004.py")
        r004 = [f for f in report.findings if f.rule_id == "R004"]
        assert len(r004) == 3  # pop-with-set-fallback, set union, list(set)

    def test_r005_flags_heapq_and_float_times(self):
        report = lint_fixture("sim/fail_r005.py")
        r005 = [f for f in report.findings if f.rule_id == "R005"]
        messages = "\n".join(f.message for f in r005)
        assert "heapq" in messages
        assert "float" in messages
        assert len(r005) == 3  # the import plus two tainted schedules


class TestPassingFixtures:
    @pytest.mark.parametrize("rule_id", sorted(PASSING))
    def test_rule_stays_silent(self, rule_id):
        report = lint_fixture(PASSING[rule_id])
        assert report.findings == []
        assert report.exit_code == 0

    def test_r002_clean_against_matching_manifest(self):
        report = lint_fixture("sim/config.py", schema=MANIFEST_OK)
        assert [f for f in report.findings if f.rule_id == "R002"] == []

    def test_rule_subset_selection(self):
        # Only R004 enabled: the R001 fixture comes up clean.
        report = lint_fixture("sim/fail_r001.py", rules=["R004"])
        assert report.findings == []
        assert report.rules == ["R004"]

    def test_rule_selection_by_slug(self):
        report = lint_fixture("sim/fail_r001.py", rules=["rng-discipline"])
        assert {f.rule_id for f in report.findings} == {"R001"}


class TestAdvisoryMode:
    def test_advisory_findings_do_not_gate(self):
        report = lint_fixture(advisory=("sim/fail_r001.py",))
        assert report.findings == []
        assert report.advisory
        assert report.exit_code == 0
        assert all(f.advisory for f in report.advisory)
