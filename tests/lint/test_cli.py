"""The lint CLI surfaces: flags, JSON shape, exit codes, runner wiring."""

import json

import pytest

from lint_corpus import FIXTURES, MANIFEST_OK
from repro.experiments.runner import build_parser
from repro.lint import LINT_RULES
from repro.lint.cli import main as lint_main

EXPECTED_RULES = ("R001", "R002", "R003", "R004", "R005")


def run_cli(capsys, *argv):
    code = lint_main(list(argv))
    return code, capsys.readouterr().out


class TestRegistry:
    def test_five_rules_registered(self):
        for rule_id in EXPECTED_RULES:
            assert rule_id in LINT_RULES

    def test_rules_carry_metadata(self):
        for rule_id in EXPECTED_RULES:
            rule = LINT_RULES.get(rule_id)
            assert rule.rule_id == rule_id
            assert rule.name
            assert rule.title


class TestCli:
    def test_list_rules(self, capsys):
        code, out = run_cli(capsys, "--list-rules")
        assert code == 0
        for rule_id in EXPECTED_RULES:
            assert rule_id in out
        assert "rng-discipline" in out

    def test_clean_file_exits_zero(self, capsys):
        code, out = run_cli(capsys, str(FIXTURES / "sim" / "pass_r001.py"))
        assert code == 0
        assert "0 finding(s)" in out

    def test_failing_file_exits_one(self, capsys):
        code, out = run_cli(capsys, str(FIXTURES / "sim" / "fail_r001.py"))
        assert code == 1
        assert "R001" in out

    def test_rules_subset_flag(self, capsys):
        code, _ = run_cli(
            capsys,
            str(FIXTURES / "sim" / "fail_r001.py"),
            "--rules",
            "R004",
        )
        assert code == 0

    def test_unknown_rule_rejected(self, capsys):
        with pytest.raises(Exception):
            run_cli(capsys, "--rules", "R999")

    def test_src_repro_default_is_clean(self, capsys):
        # The acceptance bar: the shipped tree lints clean by default.
        code, out = run_cli(capsys)
        assert code == 0, out
        assert "0 finding(s)" in out

    def test_include_tests_stays_advisory(self, capsys):
        code, _ = run_cli(capsys, "--include-tests")
        assert code == 0

    def test_relative_path_from_repo_root(self, capsys, monkeypatch):
        # Regression: a cwd-relative path used to crash _module_name
        # (relative path compared against the resolved absolute root).
        repo_root = FIXTURES.parents[2]
        monkeypatch.chdir(repo_root)
        relative = FIXTURES.relative_to(repo_root) / "sim" / "fail_r001.py"
        code, out = run_cli(capsys, str(relative))
        assert code == 1
        assert "fail_r001.py:4: R001" in out


class TestJsonOutput:
    def test_shape(self, capsys):
        code, out = run_cli(
            capsys,
            str(FIXTURES / "sim" / "fail_r001.py"),
            "--format",
            "json",
            "--schema",
            str(MANIFEST_OK),
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["version"] == 1
        assert sorted(payload["rules"]) == list(EXPECTED_RULES)
        assert payload["files"] >= 1
        assert payload["counts"]["findings"] == len(payload["findings"])
        finding = payload["findings"][0]
        assert set(finding) == {
            "rule",
            "name",
            "file",
            "line",
            "message",
            "advisory",
        }
        assert finding["advisory"] is False
        assert isinstance(finding["line"], int)

    def test_clean_run_has_empty_findings(self, capsys):
        code, out = run_cli(
            capsys,
            str(FIXTURES / "sim" / "pass_r004.py"),
            "--format",
            "json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["findings"] == []
        assert payload["counts"] == {
            "findings": 0,
            "advisory": 0,
            "warnings": 0,
        }


class TestRunnerWiring:
    def test_lint_subcommand_parses(self):
        parser = build_parser()
        args = parser.parse_args(["lint", "--format", "json"])
        assert args.experiment == "lint"
        assert args.format == "json"
        assert args.list_rules is False

    def test_lint_subcommand_accepts_paths_and_rules(self):
        parser = build_parser()
        args = parser.parse_args(
            ["lint", "src/repro/sim", "--rules", "R001", "R004"]
        )
        assert args.paths == ["src/repro/sim"]
        assert args.rules == ["R001", "R004"]
