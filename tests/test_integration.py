"""Cross-module integration tests.

These tie the layers together: the simulator against the analytic churn
model, the byte-level client under sustained churn, the public API
surface, and the examples as executable documentation.
"""

import math
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.baselines.proactive import estimate_churn, measured_churn
from repro.churn.profiles import PAPER_PROFILES
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation, run_simulation

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestPublicApi:
    def test_top_level_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_snippet_from_readme(self):
        result = repro.run_simulation(
            repro.SimulationConfig.scaled(population=60, rounds=400, seed=0)
        )
        rates = result.repair_rates()
        assert set(rates) == {
            "Newcomers", "Young peers", "Old peers", "Elder peers",
        }


class TestSimulatorVsAnalyticChurn:
    def test_measured_death_rate_matches_profile_mix(self):
        """The engine's churn must agree with the closed-form estimate."""
        config = SimulationConfig(
            population=400,
            rounds=4000,
            data_blocks=8,
            parity_blocks=8,
            repair_threshold=10,
            quota=24,
            seed=1,
        )
        result = run_simulation(config)
        peer_rounds = config.population * config.rounds
        measured = measured_churn(result.deaths, peer_rounds, config.total_blocks)
        analytic = estimate_churn(PAPER_PROFILES, config.total_blocks)
        # The uniform-lifetime mixture is not exactly exponential, and the
        # population starts synchronised, so allow a generous band.
        ratio = (
            measured.departure_rate_per_peer / analytic.departure_rate_per_peer
        )
        assert 0.4 < ratio < 2.5

    def test_profile_mix_respected_in_population(self):
        config = SimulationConfig(
            population=600, rounds=200, data_blocks=8, parity_blocks=8,
            repair_threshold=10, quota=24, seed=2,
        )
        simulation = Simulation(config)
        simulation.run()
        counts = {}
        for peer in simulation.population.alive_normal_peers():
            counts[peer.profile.name] = counts.get(peer.profile.name, 0) + 1
        total = sum(counts.values())
        # Short horizon: the alive mix still tracks the draw mix.
        assert counts["Erratic"] / total == pytest.approx(0.35, abs=0.08)
        assert counts["Durable"] / total == pytest.approx(0.10, abs=0.06)


class TestLongRunConsistency:
    def test_audit_clean_across_knob_matrix(self):
        """Every knob combination must keep the incremental state exact."""
        for knobs in (
            dict(grace_rounds=24),
            dict(proactive_rate=0.02),
            dict(adaptive_thresholds=True),
            dict(acceptance_rule="uniform", selection_strategy="random"),
            dict(staggered_join_rounds=150),
        ):
            config = SimulationConfig(
                population=70,
                rounds=900,
                data_blocks=8,
                parity_blocks=8,
                repair_threshold=10,
                quota=24,
                seed=4,
                **knobs,
            )
            simulation = Simulation(config)
            simulation.run()
            assert simulation.audit() == [], f"violations under {knobs}"

    def test_conservation_of_blocks(self):
        """Sum of hosted blocks equals sum of holder links."""
        config = SimulationConfig(
            population=100, rounds=1500, data_blocks=8, parity_blocks=8,
            repair_threshold=10, quota=24, seed=5,
        )
        simulation = Simulation(config)
        simulation.run()
        hosted = sum(
            len(p.hosted) for p in simulation.population.peers.values() if p.alive
        )
        held = sum(
            len(p.archive.holders)
            for p in simulation.population.peers.values()
            if p.alive and not p.is_observer
        )
        assert hosted == held


class TestByteLevelUnderChurn:
    def test_survives_rolling_churn(self):
        """Backup stays restorable through waves of partner failures,
        provided maintenance runs between waves."""
        from repro.backup import (
            BackupSwarm, BackupTask, MaintenanceTask, RestoreTask,
        )

        swarm = BackupSwarm(
            data_blocks=4, parity_blocks=4, quota_blocks=60, seed=9
        )
        nodes = [swarm.add_node() for _ in range(24)]
        swarm.tick(10)
        owner = nodes[0]
        files = {"data.bin": bytes(range(256)) * 8}
        BackupTask(owner, archive_size=4096).run(files)

        protected = set(
            swarm.dht.replica_locations(owner.master.dht_key())
        ) | {owner.peer_id}
        rng_victims = [n.peer_id for n in nodes if n.peer_id not in protected]
        for wave in range(3):
            # Three partners fail for good each wave.
            for victim in rng_victims[wave * 3: wave * 3 + 3]:
                if swarm.nodes[victim].online:
                    swarm.set_online(victim, False)
            swarm.tick(24)
            MaintenanceTask(owner).run()

        restored = RestoreTask(swarm, owner.peer_id, owner.user_key).run()
        assert restored.files == files


@pytest.mark.slow
@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "churn_explorer.py"],
)
def test_examples_run_clean(script):
    """The fast examples are executable documentation: they must pass."""
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


@pytest.mark.slow
def test_observer_example_runs_clean():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "observer_study.py"), "--scale", "quick"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert "Baby" in completed.stdout


def test_math_of_scaling_is_self_consistent():
    """The quick preset's dimensionless ratios equal the paper's."""
    from repro.experiments.common import FULL, QUICK

    paper = FULL.config()
    quick = QUICK.config()
    assert paper.data_blocks / paper.total_blocks == pytest.approx(
        quick.data_blocks / quick.total_blocks
    )
    assert paper.quota / paper.total_blocks == pytest.approx(
        quick.quota / quick.total_blocks
    )
    paper_slack = (paper.repair_threshold - paper.data_blocks) / (
        paper.total_blocks - paper.data_blocks
    )
    quick_slack = (quick.repair_threshold - quick.data_blocks) / (
        quick.total_blocks - quick.data_blocks
    )
    assert math.isclose(paper_slack, quick_slack, abs_tol=0.05)
