"""Documentation health: real links resolve, snippet rewrites are sane.

The heavy half of the docs lane — actually executing README/EXPERIMENTS
snippets — runs in CI via ``scripts/check_docs.py --execute``; here we
keep the fast invariants: every relative link in the repo's markdown
resolves, and the smoke-rewrite rules produce the commands CI will run.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestRepositoryDocs:
    def test_default_file_set_covers_the_operational_docs(self):
        names = {path.name for path in check_docs.default_files()}
        for required in (
            "README.md",
            "EXPERIMENTS.md",
            "ARCHITECTURE.md",
            "ROADMAP.md",
            "CHANGES.md",
        ):
            assert required in names

    def test_every_markdown_link_resolves(self):
        problems = []
        for path in check_docs.default_files():
            problems += check_docs.check_links(path)
        assert problems == []


class TestLinkChecker:
    def test_broken_relative_link_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [the spec](missing/spec.md)", encoding="utf-8")
        problems = check_docs.check_links(page)
        assert len(problems) == 1
        assert "missing/spec.md" in problems[0]

    def test_existing_relative_link_passes(self, tmp_path):
        (tmp_path / "other.md").write_text("hi", encoding="utf-8")
        page = tmp_path / "page.md"
        page.write_text(
            "see [other](other.md) and [anchored](other.md#top)",
            encoding="utf-8",
        )
        assert check_docs.check_links(page) == []

    def test_http_links_only_checked_for_shape(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "ok [a](https://example.org/x) bad [b](https://)",
            encoding="utf-8",
        )
        problems = check_docs.check_links(page)
        assert len(problems) == 1
        assert "malformed" in problems[0]


class TestBlockExtraction:
    SAMPLE = "\n".join(
        [
            "prose",
            "```console",
            "$ repro-experiments list",
            "$ PYTHONPATH=src python -m pytest -x -q \\",
            "      -m 'not slow'",
            "```",
            "<!-- check-docs: skip-exec -->",
            "```python",
            "raise RuntimeError('illustrative only')",
            "```",
        ]
    )

    def test_console_commands_join_continuations(self):
        blocks = list(check_docs.extract_blocks(self.SAMPLE))
        commands = check_docs.console_commands(blocks[0][2])
        assert commands == [
            "repro-experiments list",
            "PYTHONPATH=src python -m pytest -x -q -m 'not slow'",
        ]

    def test_skip_marker_flags_the_next_block(self):
        blocks = list(check_docs.extract_blocks(self.SAMPLE))
        assert [skip for _, _, _, skip in blocks] == [False, True]


class TestSmokeRewrite:
    def rewrite(self, command):
        return check_docs.rewrite_command(command, "/tmp/docs-cache")

    def test_scale_forced_to_quick(self):
        argv = self.rewrite("repro-experiments fig1 --scale full")
        assert argv[:3] == [sys.executable, "-m", "repro.experiments.runner"]
        assert argv[3:] == [
            "fig1", "--scale", "quick", "--cache-dir", "/tmp/docs-cache",
        ]

    def test_workers_capped(self):
        argv = self.rewrite("repro-experiments all --scale quick --workers 8")
        assert "--workers" in argv
        assert argv[argv.index("--workers") + 1] == "2"

    def test_cache_dir_redirected(self):
        argv = self.rewrite(
            "repro-experiments all --scale full --cache-dir /mnt/sweep-cache"
        )
        assert argv[argv.index("--cache-dir") + 1] == "/tmp/docs-cache"

    def test_placeholders_substituted(self):
        argv = self.rewrite(
            "repro-experiments all --scale full --workers <cores>"
        )
        assert argv[argv.index("--workers") + 1] == "2"

    def test_worker_gets_a_bounded_drain(self):
        argv = self.rewrite(
            "repro-experiments worker --scale full "
            "--cache-dir /mnt/sweep-cache --worker-id $(hostname)"
        )
        assert argv[argv.index("--experiments") + 1] == "fig4"
        assert argv[argv.index("--worker-id") + 1] == "docs-smoke"
        assert argv[argv.index("--cache-dir") + 1] == "/tmp/docs-cache"

    def test_run_population_capped(self):
        argv = self.rewrite(
            "repro-experiments run --scenario flash_crowd --seeds 0 1 2"
        )
        assert argv[argv.index("--population") + 1] == "120"

    def test_module_invocation_recognised(self):
        argv = self.rewrite(
            "PYTHONPATH=src python -m repro.experiments.runner list"
        )
        assert argv[3:] == ["list"]

    def test_equals_spelled_flags_are_normalised_and_capped(self):
        argv = self.rewrite(
            "repro-experiments all --scale=full --cache-dir=/mnt/sweep-cache"
        )
        assert argv[argv.index("--scale") + 1] == "quick"
        assert argv[argv.index("--cache-dir") + 1] == "/tmp/docs-cache"

    def test_unparseable_command_raises(self):
        import pytest

        with pytest.raises(ValueError):
            self.rewrite('repro-experiments list "unbalanced')

    def test_csv_dir_redirected_out_of_the_repo(self):
        argv = self.rewrite(
            "repro-experiments fig1 --scale default --csv-dir results/"
        )
        assert argv[argv.index("--csv-dir") + 1] == "/tmp/docs-cache-csv"

    def test_trailing_shell_comments_stripped(self):
        argv = self.rewrite(
            "repro-experiments list     # every registered component"
        )
        assert argv[3:] == ["list"]

    def test_pytest_and_pip_commands_skipped(self):
        assert self.rewrite("pip install -e .") is None
        assert (
            self.rewrite(
                "PYTHONPATH=src python -m pytest -x -q -m 'not slow'"
            )
            is None
        )


class TestServiceRewrite:
    """serve/submit pairs share one rewritten ephemeral port."""

    def test_serve_and_submit_share_a_port(self):
        state = {}
        serve = check_docs.rewrite_command(
            "repro-experiments serve --port 8765 --service-workers 4 "
            "--cache-dir .repro-cache",
            "/tmp/docs-cache",
            state,
        )
        submit = check_docs.rewrite_command(
            "repro-experiments submit --scenario paper --scale quick "
            "--url http://127.0.0.1:8765",
            "/tmp/docs-cache",
            state,
        )
        port = serve[serve.index("--port") + 1]
        assert port != "8765"  # never the documented literal
        assert submit[submit.index("--url") + 1] == f"http://127.0.0.1:{port}"
        assert serve[serve.index("--cache-dir") + 1] == "/tmp/docs-cache"
        assert serve[serve.index("--service-workers") + 1] == "2"
        assert submit[submit.index("--scale") + 1] == "quick"

    def test_port_and_url_injected_when_undocumented(self):
        state = {}
        serve = check_docs.rewrite_command(
            "repro-experiments serve", "/tmp/docs-cache", state
        )
        submit = check_docs.rewrite_command(
            "repro-experiments submit --scenario paper",
            "/tmp/docs-cache",
            state,
        )
        port = serve[serve.index("--port") + 1]
        assert submit[submit.index("--url") + 1] == f"http://127.0.0.1:{port}"
        assert serve[serve.index("--cache-dir") + 1] == "/tmp/docs-cache"

    def test_background_marker_split(self):
        assert check_docs.split_background(
            "repro-experiments serve --port 8765 &"
        ) == ("repro-experiments serve --port 8765", True)
        assert check_docs.split_background("repro-experiments list") == (
            "repro-experiments list",
            False,
        )
