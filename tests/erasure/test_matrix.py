"""Tests for matrix algebra over GF(256)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import gf256, matrix


def random_matrix(draw, size):
    return [
        [draw(st.integers(min_value=0, max_value=255)) for _ in range(size)]
        for _ in range(size)
    ]


class TestConstruction:
    def test_zeros_shape(self):
        m = matrix.zeros(2, 3)
        assert len(m) == 2 and all(len(row) == 3 for row in m)
        assert all(value == 0 for row in m for value in row)

    def test_zeros_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            matrix.zeros(0, 3)

    def test_identity(self):
        eye = matrix.identity(3)
        for i in range(3):
            for j in range(3):
                assert eye[i][j] == (1 if i == j else 0)

    def test_copy_is_deep(self):
        original = [[1, 2], [3, 4]]
        duplicate = matrix.copy(original)
        duplicate[0][0] = 99
        assert original[0][0] == 1

    def test_dimensions_rejects_ragged(self):
        with pytest.raises(ValueError):
            matrix.dimensions([[1, 2], [3]])

    def test_dimensions_rejects_empty(self):
        with pytest.raises(ValueError):
            matrix.dimensions([])


class TestMultiply:
    def test_identity_is_neutral(self):
        m = [[5, 6], [7, 8]]
        assert matrix.multiply(matrix.identity(2), m) == m
        assert matrix.multiply(m, matrix.identity(2)) == m

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            matrix.multiply([[1, 2]], [[1, 2]])

    def test_multiply_vector_matches_matrix_product(self):
        m = [[1, 2, 3], [4, 5, 6]]
        v = [7, 8, 9]
        expected = [row[0] for row in matrix.multiply(m, [[x] for x in v])]
        assert matrix.multiply_vector(m, v) == expected

    def test_multiply_vector_length_check(self):
        with pytest.raises(ValueError):
            matrix.multiply_vector([[1, 2]], [1, 2, 3])


class TestInvert:
    def test_identity_inverts_to_itself(self):
        assert matrix.invert(matrix.identity(4)) == matrix.identity(4)

    def test_invert_roundtrip(self):
        m = matrix.vandermonde(3, 3)
        inv = matrix.invert(m)
        assert matrix.multiply(m, inv) == matrix.identity(3)

    def test_singular_raises(self):
        with pytest.raises(ValueError):
            matrix.invert([[1, 2], [1, 2]])

    def test_zero_matrix_raises(self):
        with pytest.raises(ValueError):
            matrix.invert(matrix.zeros(2, 2))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            matrix.invert([[1, 2, 3], [4, 5, 6]])

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_invertible_roundtrip(self, data):
        size = data.draw(st.integers(min_value=1, max_value=5))
        m = [
            [data.draw(st.integers(min_value=0, max_value=255)) for _ in range(size)]
            for _ in range(size)
        ]
        if matrix.rank(m) < size:
            return  # singular draw; nothing to check
        inv = matrix.invert(m)
        assert matrix.multiply(m, inv) == matrix.identity(size)


class TestRank:
    def test_identity_full_rank(self):
        assert matrix.rank(matrix.identity(5)) == 5

    def test_zero_matrix_rank(self):
        assert matrix.rank(matrix.zeros(3, 3)) == 0

    def test_duplicated_row(self):
        assert matrix.rank([[1, 2], [1, 2]]) == 1

    def test_rectangular(self):
        assert matrix.rank([[1, 0, 0], [0, 1, 0]]) == 2


class TestVandermonde:
    def test_shape_and_values(self):
        v = matrix.vandermonde(4, 3)
        for r in range(4):
            for c in range(3):
                assert v[r][c] == gf256.power(r, c)

    def test_any_square_subset_invertible(self):
        v = matrix.vandermonde(8, 4)
        for rows in [(0, 1, 2, 3), (0, 2, 4, 6), (4, 5, 6, 7), (1, 3, 5, 7)]:
            sub = matrix.submatrix(v, rows)
            assert matrix.rank(sub) == 4

    def test_too_many_rows(self):
        with pytest.raises(ValueError):
            matrix.vandermonde(257, 2)


class TestCauchy:
    def test_all_square_submatrices_invertible(self):
        c = matrix.cauchy([4, 5, 6, 7], [0, 1, 2, 3])
        assert matrix.rank(c) == 4
        for rows in [(0, 1), (1, 3), (0, 3)]:
            sub = [matrix.submatrix(c, rows)[i][:2] for i in range(2)]
            assert matrix.rank(sub) == 2

    def test_overlapping_coordinates_rejected(self):
        with pytest.raises(ValueError):
            matrix.cauchy([1, 2], [2, 3])

    def test_duplicate_coordinates_rejected(self):
        with pytest.raises(ValueError):
            matrix.cauchy([1, 1], [2, 3])

    def test_values_are_inverses_of_sums(self):
        c = matrix.cauchy([10], [3])
        assert c[0][0] == gf256.inverse(10 ^ 3)
