"""Tests for the archive codec (bytes <-> coded blocks)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.codec import ArchiveCodec, CodedBlock
from repro.erasure.reed_solomon import ErasureCodingError


@pytest.fixture
def codec() -> ArchiveCodec:
    return ArchiveCodec(4, 4)


class TestSplit:
    def test_block_count(self, codec):
        blocks = codec.split(b"hello world")
        assert len(blocks) == codec.n
        assert [b.index for b in blocks] == list(range(codec.n))

    def test_blocks_verify(self, codec):
        for block in codec.split(b"payload"):
            assert block.verify()

    def test_equal_block_sizes(self, codec):
        blocks = codec.split(b"x" * 101)
        sizes = {len(b.payload) for b in blocks}
        assert len(sizes) == 1
        assert sizes.pop() == codec.block_size_for(101)

    def test_empty_archive(self, codec):
        blocks = codec.split(b"")
        assert len(blocks) == codec.n
        assert codec.reassemble({b.index: b for b in blocks}) == b""

    def test_block_size_for_negative(self, codec):
        with pytest.raises(ValueError):
            codec.block_size_for(-1)


class TestReassemble:
    def test_roundtrip_all_blocks(self, codec):
        payload = bytes(range(256)) * 3 + b"tail"
        blocks = {b.index: b for b in codec.split(payload)}
        assert codec.reassemble(blocks) == payload

    def test_roundtrip_minimum_blocks(self, codec):
        payload = b"the quick brown fox" * 9
        blocks = codec.split(payload)
        subset = {b.index: b for b in blocks[codec.k:]}  # parity only
        assert len(subset) == codec.k
        assert codec.reassemble(subset) == payload

    def test_too_few_blocks(self, codec):
        blocks = codec.split(b"data")
        subset = {b.index: b for b in blocks[: codec.k - 1]}
        with pytest.raises(ErasureCodingError):
            codec.reassemble(subset)

    def test_corrupted_blocks_are_discarded(self, codec):
        payload = b"important bytes" * 10
        blocks = codec.split(payload)
        tampered = CodedBlock(
            index=blocks[0].index,
            payload=b"\x00" * len(blocks[0].payload),
            checksum=blocks[0].checksum,  # stale digest -> verify() fails
        )
        available = {b.index: b for b in blocks[1:]}
        available[0] = tampered
        assert codec.reassemble(available) == payload

    def test_all_corrupted_raises(self, codec):
        payload = b"abc" * 7
        blocks = codec.split(payload)
        bad = {
            b.index: CodedBlock(b.index, b.payload[:-1] + b"\xff", b.checksum)
            for b in blocks
        }
        with pytest.raises(ErasureCodingError):
            codec.reassemble(bad)


class TestRepairBlock:
    def test_repair_matches_original(self, codec):
        payload = b"block to regenerate" * 5
        blocks = codec.split(payload)
        available = {b.index: b for b in blocks if b.index != 2}
        regenerated = codec.repair_block(available, 2)
        assert regenerated.payload == blocks[2].payload
        assert regenerated.verify()

    def test_repair_parity_block(self, codec):
        payload = b"parity path" * 4
        blocks = codec.split(payload)
        target = codec.n - 1
        available = {b.index: b for b in blocks if b.index != target}
        assert codec.repair_block(available, target).payload == blocks[target].payload


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        payload=st.binary(min_size=0, max_size=512),
        data=st.data(),
    )
    def test_any_k_subset_roundtrips(self, payload, data):
        codec = ArchiveCodec(3, 3)
        blocks = codec.split(payload)
        survivors = data.draw(
            st.lists(
                st.sampled_from(range(codec.n)),
                min_size=codec.k,
                max_size=codec.n,
                unique=True,
            )
        )
        available = {i: blocks[i] for i in survivors}
        assert codec.reassemble(available) == payload

    @settings(max_examples=25, deadline=None)
    @given(payload=st.binary(min_size=0, max_size=300))
    def test_sizes_are_exact_for_any_payload(self, payload):
        codec = ArchiveCodec(5, 2)
        blocks = codec.split(payload)
        expected = codec.block_size_for(len(payload))
        assert all(len(b.payload) == expected for b in blocks)
