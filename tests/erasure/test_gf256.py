"""Unit and property tests for GF(2^8) arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.erasure import gf256

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_exp_table_is_periodic_copy(self):
        for i in range(255):
            assert gf256.EXP_TABLE[i] == gf256.EXP_TABLE[i + 255]

    def test_exp_log_inverse_on_nonzero(self):
        for value in range(1, 256):
            assert gf256.EXP_TABLE[gf256.LOG_TABLE[value]] == value

    def test_exp_covers_all_nonzero_elements(self):
        assert sorted(set(gf256.EXP_TABLE[:255])) == list(range(1, 256))

    def test_generator_has_full_order(self):
        # 0x03 generates the whole multiplicative group.
        assert gf256.LOG_TABLE[gf256.GENERATOR] == 1


class TestBasicOps:
    def test_add_is_xor(self):
        assert gf256.add(0b1010, 0b0110) == 0b1100

    def test_subtract_equals_add(self):
        assert gf256.subtract(200, 123) == gf256.add(200, 123)

    def test_multiply_by_zero(self):
        assert gf256.multiply(0, 77) == 0
        assert gf256.multiply(77, 0) == 0

    def test_multiply_by_one(self):
        for value in (1, 2, 77, 255):
            assert gf256.multiply(value, 1) == value

    def test_known_aes_product(self):
        # 0x53 * 0xCA = 0x01 in the AES field (classic test vector).
        assert gf256.multiply(0x53, 0xCA) == 0x01

    def test_divide_inverts_multiply(self):
        assert gf256.divide(gf256.multiply(123, 45), 45) == 123

    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.divide(10, 0)

    def test_zero_divided_is_zero(self):
        assert gf256.divide(0, 99) == 0

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.inverse(0)

    def test_power_zero_exponent(self):
        assert gf256.power(0, 0) == 1
        assert gf256.power(123, 0) == 1

    def test_power_matches_repeated_multiplication(self):
        value = 1
        for exponent in range(1, 10):
            value = gf256.multiply(value, 7)
            assert gf256.power(7, exponent) == value

    def test_power_negative_exponent(self):
        assert gf256.multiply(gf256.power(9, -1), 9) == 1

    def test_power_zero_base_negative_exponent_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.power(0, -1)


class TestFieldAxioms:
    @given(elements, elements)
    def test_multiplication_commutes(self, a, b):
        assert gf256.multiply(a, b) == gf256.multiply(b, a)

    @given(elements, elements, elements)
    def test_multiplication_associates(self, a, b, c):
        left = gf256.multiply(gf256.multiply(a, b), c)
        right = gf256.multiply(a, gf256.multiply(b, c))
        assert left == right

    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        left = gf256.multiply(a, gf256.add(b, c))
        right = gf256.add(gf256.multiply(a, b), gf256.multiply(a, c))
        assert left == right

    @given(nonzero)
    def test_inverse_property(self, a):
        assert gf256.multiply(a, gf256.inverse(a)) == 1

    @given(elements)
    def test_addition_self_inverse(self, a):
        assert gf256.add(a, a) == 0

    @given(elements, nonzero)
    def test_division_consistent_with_inverse(self, a, b):
        assert gf256.divide(a, b) == gf256.multiply(a, gf256.inverse(b))

    @given(nonzero, nonzero)
    def test_product_never_zero_for_nonzero_factors(self, a, b):
        assert gf256.multiply(a, b) != 0


class TestVectorOps:
    def test_dot_product_known(self):
        assert gf256.dot_product([1, 0, 2], [3, 9, 1]) == gf256.add(
            3, gf256.multiply(2, 1)
        )

    def test_dot_product_length_mismatch(self):
        with pytest.raises(ValueError):
            gf256.dot_product([1, 2], [1])

    def test_scale_vector_by_zero(self):
        assert gf256.scale_vector([1, 2, 3], 0) == [0, 0, 0]

    def test_scale_vector_known(self):
        assert gf256.scale_vector([1, 2], 2) == [2, 4]

    def test_add_vectors(self):
        assert gf256.add_vectors([1, 2, 3], [1, 2, 3]) == [0, 0, 0]

    def test_add_vectors_length_mismatch(self):
        with pytest.raises(ValueError):
            gf256.add_vectors([1], [1, 2])


class TestValidation:
    @pytest.mark.parametrize("bad", [-1, 256, 1000, 1.5, "7", True])
    def test_validate_element_rejects(self, bad):
        with pytest.raises(ValueError):
            gf256.validate_element(bad)

    @pytest.mark.parametrize("good", [0, 1, 255])
    def test_validate_element_accepts(self, good):
        assert gf256.validate_element(good) == good
