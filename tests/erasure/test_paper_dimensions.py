"""Reed-Solomon at the paper's exact dimensions (k = 128, m = 128).

Section 2.1's worked example, executed: "if k = 128 and m = 128, the
system will store the data on 256 different nodes using twice the
initial storage, but supporting until 128 node failures without losing
any data."
"""

import numpy as np
import pytest

from repro.erasure.reed_solomon import ErasureCodingError, ReedSolomonCode


@pytest.fixture(scope="module")
def paper_code():
    return ReedSolomonCode(128, 128)


@pytest.fixture(scope="module")
def paper_blocks(paper_code):
    rng = np.random.default_rng(7)
    data = [
        rng.integers(0, 256, 64, dtype=np.uint8).tobytes() for _ in range(128)
    ]
    return data, paper_code.encode(data)


class TestPaperExample:
    def test_twice_the_storage(self, paper_code):
        assert paper_code.n == 2 * paper_code.k == 256

    def test_survives_128_failures(self, paper_code, paper_blocks):
        data, coded = paper_blocks
        rng = np.random.default_rng(1)
        failed = set(rng.choice(256, size=128, replace=False).tolist())
        available = {i: coded[i] for i in range(256) if i not in failed}
        assert len(available) == 128
        assert paper_code.decode(available) == data

    def test_129_failures_lose_data(self, paper_code, paper_blocks):
        _, coded = paper_blocks
        available = {i: coded[i] for i in range(127)}
        with pytest.raises(ErasureCodingError):
            paper_code.decode(available)

    def test_parity_only_decode(self, paper_code, paper_blocks):
        data, coded = paper_blocks
        available = {i: coded[i] for i in range(128, 256)}
        assert paper_code.decode(available) == data

    def test_single_block_repair_at_paper_width(self, paper_code, paper_blocks):
        _, coded = paper_blocks
        available = {i: coded[i] for i in range(256) if i != 200}
        assert paper_code.reconstruct_block(available, 200) == coded[200]
