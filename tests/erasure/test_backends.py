"""Tests for the pluggable matrix backends (python vs numpy)."""

import subprocess
import sys
import textwrap

import pytest

from repro.erasure import matrix
from repro.erasure.codec import ArchiveCodec
from repro.erasure.matrix import CODEC_BACKENDS, DEFAULT_BACKEND
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.registry import UnknownComponentError
from repro.sim.rng import seeded_generator


def _random_matrix(rng, rows, cols):
    return rng.integers(0, 256, size=(rows, cols)).tolist()


class TestBackendRegistry:
    def test_python_always_registered(self):
        assert "python" in CODEC_BACKENDS

    def test_numpy_registered_here(self):
        """This environment has numpy, so the fast backend must exist."""
        assert "numpy" in CODEC_BACKENDS
        assert DEFAULT_BACKEND == "numpy"

    def test_default_backend_resolves(self):
        assert matrix.get_backend().name == DEFAULT_BACKEND
        assert matrix.get_backend("python").name == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(UnknownComponentError):
            matrix.get_backend("fortran")
        with pytest.raises(UnknownComponentError):
            ReedSolomonCode(4, 2, backend="fortran")


class TestBackendEquivalence:
    @pytest.mark.parametrize("size", [1, 2, 3, 8, 16, 24])
    def test_invert_matches_python(self, size):
        rng = seeded_generator(size)
        for attempt in range(20):
            candidate = _random_matrix(rng, size, size)
            try:
                expected = matrix.invert(candidate, backend="python")
            except ValueError:
                with pytest.raises(ValueError):
                    matrix.invert(candidate, backend="numpy")
                continue
            assert matrix.invert(candidate, backend="numpy") == expected

    @pytest.mark.parametrize("rows,cols", [(4, 4), (3, 7), (7, 3), (12, 12)])
    def test_rank_matches_python(self, rows, cols):
        rng = seeded_generator(rows * 31 + cols)
        for attempt in range(20):
            candidate = _random_matrix(rng, rows, cols)
            if attempt % 3 == 0 and rows > 1:
                candidate[-1] = candidate[0][:]  # force a dependent row
            assert matrix.rank(candidate, backend="numpy") == matrix.rank(
                candidate, backend="python"
            )

    def test_numpy_rejects_non_square_invert(self):
        with pytest.raises(ValueError):
            matrix.invert([[1, 2, 3], [4, 5, 6]], backend="numpy")

    def test_numpy_rejects_singular(self):
        singular = [[1, 2], [1, 2]]
        with pytest.raises(ValueError):
            matrix.invert(singular, backend="numpy")

    def test_vandermonde_full_rank_both_backends(self):
        candidate = matrix.vandermonde(12, 8)
        assert matrix.rank(candidate, backend="python") == 8
        assert matrix.rank(candidate, backend="numpy") == 8


class TestCodecBackendRoundTrip:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_archive_round_trip(self, backend):
        codec = ArchiveCodec(4, 4, backend=backend)
        payload = bytes(range(256)) * 3 + b"tail"
        blocks = {block.index: block for block in codec.split(payload)}
        # Lose all data blocks: decode must invert a parity submatrix.
        survivors = {i: blocks[i] for i in range(4, 8)}
        assert codec.reassemble(survivors) == payload

    def test_backends_produce_identical_blocks(self):
        payload = b"backend-identical?" * 37
        split_py = ArchiveCodec(4, 4, backend="python").split(payload)
        split_np = ArchiveCodec(4, 4, backend="numpy").split(payload)
        assert [b.payload for b in split_py] == [b.payload for b in split_np]


class TestNumpyAbsentFallback:
    def test_erasure_substrate_works_without_numpy(self):
        """With numpy unimportable, the codec falls back to pure python."""
        script = textwrap.dedent(
            """
            import importlib.abc, sys

            class NumpyBlocker(importlib.abc.MetaPathFinder):
                def find_spec(self, name, path=None, target=None):
                    if name == "numpy" or name.startswith("numpy."):
                        # What a genuinely absent numpy raises.
                        raise ModuleNotFoundError(
                            f"No module named {name!r}", name=name
                        )
                    return None

            sys.meta_path.insert(0, NumpyBlocker())
            from repro import erasure  # noqa: F401 - degraded top-level import
            import repro
            assert "ArchiveCodec" in repro.__all__
            assert "Scenario" not in repro.__all__  # simulator layer absent
            from repro.erasure import (
                ArchiveCodec, CODEC_BACKENDS, DEFAULT_BACKEND,
            )
            assert CODEC_BACKENDS.names() == ["python"]
            assert DEFAULT_BACKEND == "python"
            codec = ArchiveCodec(4, 4)
            payload = bytes(range(256)) * 5 + b"numpy-free"
            blocks = {b.index: b for b in codec.split(payload)}
            parity_only = {i: blocks[i] for i in range(4, 8)}
            assert codec.reassemble(parity_only) == payload
            """
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stderr

    def test_numpy_free_encode_matches_numpy_encode(self):
        """The pure-python block math yields byte-identical codewords."""
        from repro.erasure.reed_solomon import _matmul_python

        code = ReedSolomonCode(4, 4)
        data = [bytes([7 * i + j for j in range(96)]) for i in range(4)]
        coded = code.encode(data)
        parity = _matmul_python(code.generator_matrix[4:], data)
        assert coded[4:] == parity
