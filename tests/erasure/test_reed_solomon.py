"""Tests for the systematic Reed-Solomon code."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.reed_solomon import ErasureCodingError, ReedSolomonCode


def make_blocks(k: int, width: int, seed: int = 0) -> list:
    return [
        bytes((seed + i * 31 + j) % 256 for j in range(width)) for i in range(k)
    ]


class TestConstruction:
    def test_parameters_exposed(self):
        code = ReedSolomonCode(4, 2)
        assert (code.k, code.m, code.n) == (4, 2, 6)

    @pytest.mark.parametrize("k,m", [(0, 2), (-1, 2), (2, -1)])
    def test_invalid_parameters(self, k, m):
        with pytest.raises(ValueError):
            ReedSolomonCode(k, m)

    def test_field_size_bound(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(200, 100)

    def test_paper_dimensions_construct(self):
        code = ReedSolomonCode(128, 128)
        assert code.n == 256

    def test_generator_top_is_identity(self):
        code = ReedSolomonCode(3, 2)
        generator = code.generator_matrix
        for i in range(3):
            for j in range(3):
                assert generator[i][j] == (1 if i == j else 0)


class TestEncode:
    def test_systematic_property(self):
        code = ReedSolomonCode(4, 3)
        data = make_blocks(4, 16)
        coded = code.encode(data)
        assert coded[:4] == data

    def test_output_count_and_width(self):
        code = ReedSolomonCode(4, 3)
        coded = code.encode(make_blocks(4, 10))
        assert len(coded) == 7
        assert all(len(block) == 10 for block in coded)

    def test_zero_parity_blocks(self):
        code = ReedSolomonCode(3, 0)
        data = make_blocks(3, 5)
        assert code.encode(data) == data

    def test_empty_width(self):
        code = ReedSolomonCode(2, 2)
        assert code.encode([b"", b""]) == [b"", b"", b"", b""]

    def test_wrong_block_count(self):
        code = ReedSolomonCode(4, 2)
        with pytest.raises(ErasureCodingError):
            code.encode(make_blocks(3, 8))

    def test_uneven_lengths(self):
        code = ReedSolomonCode(2, 1)
        with pytest.raises(ErasureCodingError):
            code.encode([b"abc", b"de"])


class TestDecode:
    def test_roundtrip_with_all_blocks(self):
        code = ReedSolomonCode(4, 4)
        data = make_blocks(4, 32)
        coded = code.encode(data)
        assert code.decode(dict(enumerate(coded))) == data

    def test_roundtrip_with_only_parity(self):
        code = ReedSolomonCode(4, 4)
        data = make_blocks(4, 32, seed=9)
        coded = code.encode(data)
        available = {i: coded[i] for i in range(4, 8)}
        assert code.decode(available) == data

    def test_roundtrip_with_mixed_subset(self):
        code = ReedSolomonCode(5, 3)
        data = make_blocks(5, 17, seed=3)
        coded = code.encode(data)
        available = {0: coded[0], 2: coded[2], 5: coded[5], 6: coded[6], 7: coded[7]}
        assert code.decode(available) == data

    def test_every_k_subset_decodes(self):
        from itertools import combinations

        code = ReedSolomonCode(3, 3)
        data = make_blocks(3, 8, seed=1)
        coded = code.encode(data)
        for subset in combinations(range(6), 3):
            available = {i: coded[i] for i in subset}
            assert code.decode(available) == data, subset

    def test_insufficient_blocks(self):
        code = ReedSolomonCode(4, 4)
        coded = code.encode(make_blocks(4, 8))
        with pytest.raises(ErasureCodingError):
            code.decode({0: coded[0], 1: coded[1], 2: coded[2]})

    def test_out_of_range_index(self):
        code = ReedSolomonCode(2, 2)
        coded = code.encode(make_blocks(2, 4))
        with pytest.raises(ErasureCodingError):
            code.decode({0: coded[0], 9: coded[1]})

    def test_uneven_block_lengths(self):
        code = ReedSolomonCode(2, 2)
        with pytest.raises(ErasureCodingError):
            code.decode({0: b"abcd", 1: b"ab"})

    def test_zero_width_decode(self):
        code = ReedSolomonCode(2, 2)
        assert code.decode({2: b"", 3: b""}) == [b"", b""]


class TestReconstructBlock:
    def test_reconstruct_data_block(self):
        code = ReedSolomonCode(4, 4)
        data = make_blocks(4, 12, seed=5)
        coded = code.encode(data)
        available = {i: coded[i] for i in (1, 2, 3, 4)}
        assert code.reconstruct_block(available, 0) == coded[0]

    def test_reconstruct_parity_block(self):
        code = ReedSolomonCode(4, 4)
        coded = code.encode(make_blocks(4, 12, seed=5))
        available = {i: coded[i] for i in (0, 1, 2, 3)}
        for parity in range(4, 8):
            assert code.reconstruct_block(available, parity) == coded[parity]

    def test_reconstruct_present_block_is_identity(self):
        code = ReedSolomonCode(2, 2)
        coded = code.encode(make_blocks(2, 6))
        available = dict(enumerate(coded))
        assert code.reconstruct_block(available, 3) == coded[3]

    def test_reconstruct_out_of_range(self):
        code = ReedSolomonCode(2, 2)
        coded = code.encode(make_blocks(2, 6))
        with pytest.raises(ErasureCodingError):
            code.reconstruct_block(dict(enumerate(coded)), 4)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_random_erasures_roundtrip(self, data):
        k = data.draw(st.integers(min_value=1, max_value=6))
        m = data.draw(st.integers(min_value=0, max_value=6))
        width = data.draw(st.integers(min_value=1, max_value=24))
        code = ReedSolomonCode(k, m)
        payload = [
            bytes(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=255),
                        min_size=width,
                        max_size=width,
                    )
                )
            )
            for _ in range(k)
        ]
        coded = code.encode(payload)
        survivors = data.draw(
            st.lists(
                st.sampled_from(range(code.n)),
                min_size=k,
                max_size=code.n,
                unique=True,
            )
        )
        available = {i: coded[i] for i in survivors}
        assert code.decode(available) == payload

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_reconstructed_blocks_match_original_encoding(self, data):
        k = data.draw(st.integers(min_value=2, max_value=5))
        m = data.draw(st.integers(min_value=1, max_value=5))
        code = ReedSolomonCode(k, m)
        payload = make_blocks(k, 9, seed=data.draw(st.integers(0, 255)))
        coded = code.encode(payload)
        missing = data.draw(st.sampled_from(range(code.n)))
        available = {i: coded[i] for i in range(code.n) if i != missing}
        assert code.reconstruct_block(available, missing) == coded[missing]
