"""Tests for the quota-bounded block store."""

import hashlib

import pytest

from repro.backup.store import BlockStore, QuotaExceededError
from repro.erasure.codec import CodedBlock


def block(index=0, payload=b"data"):
    return CodedBlock(
        index=index,
        payload=payload,
        checksum=hashlib.sha256(payload).hexdigest(),
    )


class TestQuota:
    def test_free_blocks_counts_down(self):
        store = BlockStore(quota_blocks=2)
        assert store.free_blocks == 2
        store.store(1, "a", block(0))
        assert store.free_blocks == 1
        assert store.can_store()
        store.store(1, "a", block(1))
        assert not store.can_store()

    def test_quota_exceeded_raises(self):
        store = BlockStore(quota_blocks=1)
        store.store(1, "a", block(0))
        with pytest.raises(QuotaExceededError):
            store.store(2, "b", block(0))

    def test_overwrite_same_key_does_not_consume(self):
        store = BlockStore(quota_blocks=1)
        store.store(1, "a", block(0, b"v1"))
        store.store(1, "a", block(0, b"v2"))  # same key: allowed
        assert store.fetch(1, "a", 0).payload == b"v2"

    def test_zero_quota(self):
        store = BlockStore(quota_blocks=0)
        with pytest.raises(QuotaExceededError):
            store.store(1, "a", block(0))

    def test_negative_quota_rejected(self):
        with pytest.raises(ValueError):
            BlockStore(quota_blocks=-1)


class TestFetchRelease:
    def test_fetch_present(self):
        store = BlockStore(4)
        store.store(1, "a", block(2, b"xyz"))
        assert store.fetch(1, "a", 2).payload == b"xyz"

    def test_fetch_absent(self):
        assert BlockStore(4).fetch(1, "a", 0) is None

    def test_release_frees_quota(self):
        store = BlockStore(1)
        store.store(1, "a", block(0))
        assert store.release(1, "a", 0)
        assert store.can_store()
        assert not store.release(1, "a", 0)  # already gone

    def test_release_owner_removes_all(self):
        store = BlockStore(10)
        store.store(1, "a", block(0))
        store.store(1, "a", block(1))
        store.store(1, "b", block(0))
        store.store(2, "c", block(0))
        assert store.release_owner(1) == 3
        assert len(store) == 1
        assert store.fetch(2, "c", 0) is not None


class TestViews:
    def test_blocks_for_owner(self):
        store = BlockStore(10)
        store.store(1, "a", block(0))
        store.store(1, "b", block(0))
        store.store(2, "a", block(0))
        assert len(store.blocks_for(1)) == 2

    def test_owners(self):
        store = BlockStore(10)
        store.store(1, "a", block(0))
        store.store(2, "a", block(0))
        assert sorted(store.owners()) == [1, 2]

    def test_usage_by_owner(self):
        store = BlockStore(10)
        store.store(1, "a", block(0))
        store.store(1, "a", block(1))
        store.store(5, "z", block(3))
        assert store.usage_by_owner() == {1: 2, 5: 1}
