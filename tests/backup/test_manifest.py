"""Tests for the master block serialisation."""

import pytest

from repro.backup.manifest import (
    ManifestError,
    MasterBlock,
    master_block_key,
)


def sample_master() -> MasterBlock:
    master = MasterBlock(owner_id=42)
    master.add_archive(
        archive_id="peer42-archive-000000",
        is_metadata=False,
        size=4096,
        partners=[3, 7, 9, 11],
        session_key=b"k" * 32,
        user_key=b"user-key" * 4,
    )
    master.add_archive(
        archive_id="peer42-metadata",
        is_metadata=True,
        size=128,
        partners=[5, 6, 7, 8],
        session_key=b"",
        user_key=b"user-key" * 4,
    )
    return master


class TestSerialization:
    def test_roundtrip(self):
        master = sample_master()
        recovered = MasterBlock.deserialize(master.serialize())
        assert recovered.owner_id == 42
        assert set(recovered.archives) == set(master.archives)
        original = master.archives["peer42-archive-000000"]
        restored = recovered.archives["peer42-archive-000000"]
        assert restored.partners == original.partners
        assert restored.size == original.size
        assert restored.sealed_session_key == original.sealed_session_key

    def test_session_key_roundtrip_through_user_key(self):
        master = sample_master()
        recovered = MasterBlock.deserialize(master.serialize())
        record = recovered.archives["peer42-archive-000000"]
        assert record.session_key(b"user-key" * 4) == b"k" * 32

    def test_wrong_user_key_garbles_session_key(self):
        recovered = MasterBlock.deserialize(sample_master().serialize())
        record = recovered.archives["peer42-archive-000000"]
        assert record.session_key(b"wrong" * 8) != b"k" * 32

    def test_empty_session_key_stays_empty(self):
        recovered = MasterBlock.deserialize(sample_master().serialize())
        assert recovered.archives["peer42-metadata"].session_key(b"any") == b""

    def test_tamper_detection(self):
        payload = bytearray(sample_master().serialize())
        payload[20] ^= 0xFF
        with pytest.raises(ManifestError):
            MasterBlock.deserialize(bytes(payload))

    def test_truncation_detection(self):
        payload = sample_master().serialize()
        with pytest.raises(ManifestError):
            MasterBlock.deserialize(payload[: len(payload) // 2])

    def test_bad_magic(self):
        payload = sample_master().serialize()
        with pytest.raises(ManifestError):
            MasterBlock.deserialize(b"XXXXXXXX" + payload[8:])

    def test_too_short(self):
        with pytest.raises(ManifestError):
            MasterBlock.deserialize(b"short")

    def test_empty_master_block(self):
        master = MasterBlock(owner_id=1)
        recovered = MasterBlock.deserialize(master.serialize())
        assert recovered.archives == {}


class TestUpdates:
    def test_update_partner(self):
        master = sample_master()
        master.update_partner("peer42-archive-000000", 2, 99)
        assert master.archives["peer42-archive-000000"].partners[2] == 99

    def test_update_unknown_archive(self):
        with pytest.raises(ManifestError):
            sample_master().update_partner("nope", 0, 1)

    def test_update_out_of_range_index(self):
        with pytest.raises(ManifestError):
            sample_master().update_partner("peer42-archive-000000", 99, 1)

    def test_metadata_archives_filter(self):
        metadata = sample_master().metadata_archives()
        assert [record.archive_id for record in metadata] == ["peer42-metadata"]

    def test_add_archive_replaces(self):
        master = sample_master()
        master.add_archive(
            archive_id="peer42-archive-000000",
            is_metadata=False,
            size=1,
            partners=[1],
            session_key=b"",
            user_key=b"u",
        )
        assert master.archives["peer42-archive-000000"].partners == [1]


class TestDhtKey:
    def test_key_is_deterministic(self):
        assert master_block_key(7) == master_block_key(7)
        assert master_block_key(7) != master_block_key(8)

    def test_method_matches_function(self):
        assert sample_master().dht_key() == master_block_key(42)
