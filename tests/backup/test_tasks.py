"""Integration tests for the three tasks: backup, restore, maintenance."""

import pytest

from repro.backup.backup_task import BackupError, BackupTask
from repro.backup.client import BackupSwarm
from repro.backup.maintenance import MaintenanceTask
from repro.backup.restore_task import RestoreError, RestoreTask, restore_files

FILES = {
    "docs/report.txt": b"quarterly numbers " * 40,
    "photos/holiday.raw": bytes(range(256)) * 6,
    "empty.txt": b"",
}


class TestBackupTask:
    def test_backup_completes(self, small_swarm):
        owner = small_swarm.nodes[0]
        report = BackupTask(owner, archive_size=2048).run(FILES)
        assert report.complete
        assert report.master_block_replicas >= 1

    def test_blocks_on_distinct_partners(self, small_swarm):
        owner = small_swarm.nodes[0]
        report = BackupTask(owner, archive_size=2048).run(FILES)
        for placement in report.placements:
            placed = [p for p in placement.partners if p >= 0]
            assert len(placed) == len(set(placed))
            assert owner.peer_id not in placed

    def test_archives_recorded_in_master(self, small_swarm):
        owner = small_swarm.nodes[0]
        report = BackupTask(owner, archive_size=2048).run(FILES)
        assert set(owner.master.archives) == {
            p.archive_id for p in report.placements
        }

    def test_metadata_archive_created(self, small_swarm):
        owner = small_swarm.nodes[0]
        BackupTask(owner, archive_size=2048).run(FILES)
        assert owner.master.metadata_archives()

    def test_empty_backup_rejected(self, small_swarm):
        with pytest.raises(BackupError):
            BackupTask(small_swarm.nodes[0]).run({})

    def test_blocks_actually_stored_on_partners(self, small_swarm):
        owner = small_swarm.nodes[0]
        report = BackupTask(owner, archive_size=2048).run(FILES)
        placement = report.placements[0]
        for index, partner_id in enumerate(placement.partners):
            block = small_swarm.nodes[partner_id].store.fetch(
                owner.peer_id, placement.archive_id, index
            )
            assert block is not None and block.verify()

    def test_large_file_chunked(self, small_swarm):
        owner = small_swarm.nodes[0]
        big = {"huge.bin": bytes(range(256)) * 64}  # 16 KiB >> archive size
        report = BackupTask(owner, archive_size=2048).run(big)
        assert report.complete
        restored = RestoreTask(small_swarm, owner.peer_id, owner.user_key).run()
        assert restored.files == big


class TestRestoreTask:
    def test_disaster_restore(self, small_swarm):
        owner = small_swarm.nodes[0]
        BackupTask(owner, archive_size=2048).run(FILES)
        owner.local_archives.clear()  # the disk is gone
        restored = restore_files(small_swarm, owner.peer_id, owner.user_key)
        assert restored == FILES

    def test_restore_with_k_partners_only(self, small_swarm):
        owner = small_swarm.nodes[0]
        report = BackupTask(owner, archive_size=2048).run(FILES)
        # Keep the DHT replicas of the master block reachable: this test
        # exercises archive-block erasure tolerance, not DHT durability.
        protected = set(
            small_swarm.dht.replica_locations(owner.master.dht_key())
        )
        # Knock out m partners of every archive: exactly k remain.
        for placement in report.placements:
            victims = [p for p in placement.partners if p >= 0][small_swarm.codec.k:]
            for victim in victims:
                if victim not in protected and small_swarm.nodes[victim].online:
                    small_swarm.set_online(victim, False)
        restored = RestoreTask(small_swarm, owner.peer_id, owner.user_key).run()
        assert restored.files == FILES

    def test_restore_fails_below_k(self, small_swarm):
        owner = small_swarm.nodes[0]
        report = BackupTask(owner, archive_size=2048).run(FILES)
        protected = set(
            small_swarm.dht.replica_locations(owner.master.dht_key())
        )
        placement = report.placements[0]
        victims = {p for p in placement.partners if p >= 0} - protected
        for victim in victims:
            small_swarm.set_online(victim, False)
        surviving = len({p for p in placement.partners if p >= 0} & protected)
        if surviving >= small_swarm.codec.k:
            pytest.skip("too few distinct victims in this topology draw")
        result = RestoreTask(small_swarm, owner.peer_id, owner.user_key).run()
        assert placement.archive_id in result.unreachable_archives
        with pytest.raises(RestoreError):
            restore_files(small_swarm, owner.peer_id, owner.user_key)

    def test_missing_master_block(self, small_swarm):
        with pytest.raises(RestoreError):
            RestoreTask(small_swarm, owner_id=999, user_key=b"k").run()

    def test_metadata_index_restored(self, small_swarm):
        owner = small_swarm.nodes[0]
        BackupTask(owner, archive_size=2048).run(FILES)
        result = RestoreTask(small_swarm, owner.peer_id, owner.user_key).run()
        indexed = {
            name for entries in result.metadata_index.values()
            for name, _ in entries
        }
        assert "docs/report.txt" in indexed


class TestMaintenanceTask:
    def kill_partners(self, swarm, placement, count):
        victims = [p for p in placement.partners if p >= 0][:count]
        for victim in victims:
            swarm.set_online(victim, False)
        return victims

    def test_no_repair_when_healthy(self, small_swarm):
        owner = small_swarm.nodes[0]
        BackupTask(owner, archive_size=2048).run(FILES)
        report = MaintenanceTask(owner).run()
        assert report.repairs == 0
        assert report.losses == 0

    def test_repair_replaces_missing_blocks(self, small_swarm):
        owner = small_swarm.nodes[0]
        backup = BackupTask(owner, archive_size=2048).run(FILES)
        placement = backup.placements[0]
        threshold = small_swarm.policy.repair_threshold
        lost = small_swarm.policy.n - threshold + 1
        victims = self.kill_partners(small_swarm, placement, lost)
        report = MaintenanceTask(owner).run()
        assert report.repairs >= 1
        repaired = next(
            a for a in report.archives if a.archive_id == placement.archive_id
        )
        assert repaired.repaired
        assert repaired.new_partners
        assert not set(repaired.new_partners.values()) & set(victims)

    def test_master_block_updated_after_repair(self, small_swarm):
        owner = small_swarm.nodes[0]
        backup = BackupTask(owner, archive_size=2048).run(FILES)
        placement = backup.placements[0]
        lost = small_swarm.policy.n - small_swarm.policy.repair_threshold + 1
        self.kill_partners(small_swarm, placement, lost)
        MaintenanceTask(owner).run()
        # A fresh restore must succeed using the updated master block.
        restored = RestoreTask(small_swarm, owner.peer_id, owner.user_key).run()
        assert restored.files == FILES

    def test_blocked_when_below_k(self, small_swarm):
        owner = small_swarm.nodes[0]
        backup = BackupTask(owner, archive_size=2048).run(FILES)
        placement = backup.placements[0]
        self.kill_partners(
            small_swarm, placement, small_swarm.policy.n - small_swarm.policy.k + 1
        )
        report = MaintenanceTask(owner).run()
        blocked = next(
            a for a in report.archives if a.archive_id == placement.archive_id
        )
        assert blocked.blocked
        assert not blocked.repaired
