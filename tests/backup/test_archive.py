"""Tests for the archive container format and session-key cipher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backup.archive import (
    Archive,
    ArchiveBuilder,
    ArchiveFormatError,
    FileEntry,
    build_metadata_archive,
    decrypt,
    encrypt,
    iter_chunks,
    new_session_key,
    pack_entries,
    parse_metadata_archive,
    unpack_entries,
)


class TestCipher:
    def test_roundtrip(self):
        key = new_session_key()
        payload = b"secret bytes" * 20
        assert decrypt(encrypt(payload, key), key) == payload

    def test_wrong_key_garbles(self):
        payload = b"secret bytes" * 20
        garbled = decrypt(encrypt(payload, b"key-a" * 7), b"key-b" * 7)
        assert garbled != payload

    def test_ciphertext_differs_from_plaintext(self):
        payload = b"hello world hello world"
        assert encrypt(payload, new_session_key()) != payload

    def test_empty_payload(self):
        key = new_session_key()
        assert encrypt(b"", key) == b""

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            encrypt(b"data", b"")

    def test_keys_are_random(self):
        assert new_session_key() != new_session_key()
        assert len(new_session_key()) == 32

    @settings(max_examples=30, deadline=None)
    @given(payload=st.binary(max_size=500), key=st.binary(min_size=1, max_size=64))
    def test_involution_property(self, payload, key):
        assert encrypt(encrypt(payload, key), key) == payload


class TestEntries:
    def test_pack_unpack_roundtrip(self):
        entries = [
            FileEntry("a.txt", b"alpha"),
            FileEntry("dir/b.bin", bytes(range(256))),
            FileEntry("empty", b""),
        ]
        assert unpack_entries(pack_entries(entries)) == entries

    def test_unicode_names(self):
        entries = [FileEntry("fichier-été.txt", b"data")]
        assert unpack_entries(pack_entries(entries)) == entries

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            FileEntry("", b"data")

    def test_truncated_header(self):
        payload = pack_entries([FileEntry("a", b"abc")])
        with pytest.raises(ArchiveFormatError):
            unpack_entries(payload[:-5] + b"\xff" * 20)

    def test_truncated_body(self):
        payload = pack_entries([FileEntry("a", b"abcdef")])
        with pytest.raises(ArchiveFormatError):
            unpack_entries(payload[:-2])

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.text(min_size=1, max_size=20),
                st.binary(max_size=200),
            ),
            max_size=8,
        )
    )
    def test_roundtrip_property(self, raw):
        entries = [FileEntry(name, content) for name, content in raw]
        assert unpack_entries(pack_entries(entries)) == entries


class TestArchiveBuilder:
    def test_seals_on_size_limit(self):
        builder = ArchiveBuilder(max_size=256, encrypt_payloads=False)
        sealed = []
        for i in range(10):
            sealed.extend(builder.add_file(f"f{i}", b"y" * 100))
        sealed.extend(builder.flush())
        assert len(sealed) >= 2
        for archive in sealed:
            assert archive.size <= 256

    def test_archive_ids_sequential(self):
        builder = ArchiveBuilder(max_size=256, owner_tag="me", encrypt_payloads=False)
        builder.add_file("a", b"x" * 100)
        builder.add_file("b", b"x" * 100)
        builder.add_file("c", b"x" * 100)
        sealed = builder.flush()
        assert all(a.archive_id.startswith("me-archive-") for a in sealed)

    def test_oversized_file_rejected(self):
        builder = ArchiveBuilder(max_size=64)
        with pytest.raises(ValueError):
            builder.add_file("big", b"z" * 100)

    def test_flush_empty_is_empty(self):
        assert ArchiveBuilder(max_size=256).flush() == []

    def test_encrypted_archives_open(self):
        builder = ArchiveBuilder(max_size=1024, encrypt_payloads=True)
        builder.add_file("secret.txt", b"top secret")
        (archive,) = builder.flush()
        assert archive.session_key
        entries = archive.open()
        assert entries == [FileEntry("secret.txt", b"top secret")]

    def test_unencrypted_archives_open(self):
        builder = ArchiveBuilder(max_size=1024, encrypt_payloads=False)
        builder.add_file("public.txt", b"readable")
        (archive,) = builder.flush()
        assert archive.session_key == b""
        assert archive.open() == [FileEntry("public.txt", b"readable")]

    def test_too_small_max_size(self):
        with pytest.raises(ValueError):
            ArchiveBuilder(max_size=4)

    def test_contents_preserved_across_rollover(self):
        builder = ArchiveBuilder(max_size=300, encrypt_payloads=False)
        files = {f"f{i}": bytes([i]) * 80 for i in range(8)}
        archives = []
        for name, content in files.items():
            archives.extend(builder.add_file(name, content))
        archives.extend(builder.flush())
        recovered = {}
        for archive in archives:
            for entry in archive.open():
                recovered[entry.name] = entry.content
        assert recovered == files


class TestMetadataArchive:
    def test_roundtrip(self):
        index = {
            "arch-0": [("a.txt", 100), ("b.txt", 3)],
            "arch-1": [("c.bin", 999)],
        }
        archive = build_metadata_archive("me", index)
        assert archive.is_metadata
        assert parse_metadata_archive(archive) == index

    def test_empty_index(self):
        archive = build_metadata_archive("me", {})
        assert parse_metadata_archive(archive) == {}

    def test_non_metadata_rejected(self):
        plain = Archive(archive_id="x", payload=b"data")
        with pytest.raises(ArchiveFormatError):
            parse_metadata_archive(plain)

    def test_malformed_line(self):
        bad = Archive(archive_id="x", payload=b"only-one-field", is_metadata=True)
        with pytest.raises(ArchiveFormatError):
            parse_metadata_archive(bad)


class TestIterChunks:
    def test_exact_division(self):
        chunks = list(iter_chunks(b"abcdef", 2))
        assert chunks == [b"ab", b"cd", b"ef"]

    def test_remainder(self):
        chunks = list(iter_chunks(b"abcde", 2))
        assert chunks == [b"ab", b"cd", b"e"]

    def test_empty(self):
        assert list(iter_chunks(b"", 4)) == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks(b"abc", 0))
