"""Tests for the direct-exchange fairness accounting."""

import pytest

from repro.backup.client import BackupSwarm
from repro.backup.backup_task import BackupTask
from repro.backup.fairness import ExchangeLedger, GlobalFairness


class TestExchangeLedger:
    def test_balances_start_at_zero(self):
        ledger = ExchangeLedger()
        balance = ledger.balance_with(5)
        assert balance.stored_for_partner == 0
        assert balance.stored_by_partner == 0
        assert balance.debt == 0

    def test_debt_direction(self):
        ledger = ExchangeLedger()
        ledger.record_stored_for(5, blocks=3)  # they use my space
        ledger.record_stored_by(5, blocks=1)   # I use theirs
        assert ledger.balance_with(5).debt == 2  # they owe me 2

    def test_releases_clamp_at_zero(self):
        ledger = ExchangeLedger()
        ledger.record_stored_for(5, blocks=1)
        ledger.record_released_for(5, blocks=10)
        assert ledger.balance_with(5).stored_for_partner == 0
        ledger.record_released_by(5, blocks=10)
        assert ledger.balance_with(5).stored_by_partner == 0

    def test_negative_blocks_rejected(self):
        ledger = ExchangeLedger()
        with pytest.raises(ValueError):
            ledger.record_stored_for(5, blocks=-1)
        with pytest.raises(ValueError):
            ledger.record_stored_by(5, blocks=-1)

    def test_grace_allows_bootstrap(self):
        ledger = ExchangeLedger(grace_blocks=4)
        # A brand-new partner with no reciprocity may store 4 blocks.
        assert not ledger.would_exceed_debt(7, fairness_factor=1.0, extra_blocks=4)
        assert ledger.would_exceed_debt(7, fairness_factor=1.0, extra_blocks=5)

    def test_reciprocity_raises_the_ceiling(self):
        ledger = ExchangeLedger(grace_blocks=0)
        ledger.record_stored_by(7, blocks=10)  # they host 10 for me
        assert not ledger.would_exceed_debt(7, fairness_factor=1.0, extra_blocks=10)
        assert ledger.would_exceed_debt(7, fairness_factor=1.0, extra_blocks=11)

    def test_fairness_factor_scales_ceiling(self):
        ledger = ExchangeLedger(grace_blocks=0)
        ledger.record_stored_by(7, blocks=5)
        assert not ledger.would_exceed_debt(7, fairness_factor=2.0, extra_blocks=10)
        assert ledger.would_exceed_debt(7, fairness_factor=2.0, extra_blocks=11)

    def test_bad_fairness_factor(self):
        with pytest.raises(ValueError):
            ExchangeLedger().would_exceed_debt(1, fairness_factor=0)

    def test_negative_grace_rejected(self):
        with pytest.raises(ValueError):
            ExchangeLedger(grace_blocks=-1)

    def test_debtors_sorted(self):
        ledger = ExchangeLedger()
        ledger.record_stored_for(1, blocks=5)
        ledger.record_stored_for(2, blocks=1)
        ledger.record_stored_by(3, blocks=4)
        assert [peer for peer, _ in ledger.debtors()] == [1, 2, 3]

    def test_totals(self):
        ledger = ExchangeLedger()
        ledger.record_stored_for(1, blocks=2)
        ledger.record_stored_for(2, blocks=3)
        ledger.record_stored_by(1, blocks=1)
        totals = ledger.totals()
        assert totals.stored_for_partner == 5
        assert totals.stored_by_partner == 1


class TestGlobalFairness:
    def test_ratio(self):
        fairness = GlobalFairness()
        fairness.record_hosting(1, blocks=6)
        fairness.record_placement(1, blocks=3)
        assert fairness.ratio(1) == 2.0

    def test_pure_contributor_is_infinite(self):
        fairness = GlobalFairness()
        fairness.record_hosting(1)
        assert fairness.ratio(1) == float("inf")

    def test_inactive_peer_is_neutral(self):
        assert GlobalFairness().ratio(42) == 1.0

    def test_free_riders(self):
        fairness = GlobalFairness()
        fairness.record_hosting(1, 10)
        fairness.record_placement(1, 5)
        fairness.record_hosting(2, 1)
        fairness.record_placement(2, 10)
        assert fairness.free_riders(minimum_ratio=1.0) == [2]

    def test_free_riders_validation(self):
        with pytest.raises(ValueError):
            GlobalFairness().free_riders(minimum_ratio=0)

    def test_gini_zero_for_equal_system(self):
        fairness = GlobalFairness()
        for peer in range(4):
            fairness.record_hosting(peer, 10)
            fairness.record_placement(peer, 10)
        assert fairness.gini_coefficient() == pytest.approx(0.0, abs=1e-9)

    def test_gini_positive_for_skewed_system(self):
        fairness = GlobalFairness()
        fairness.record_hosting(0, 100)
        fairness.record_placement(0, 1)
        fairness.record_hosting(1, 1)
        fairness.record_placement(1, 100)
        assert fairness.gini_coefficient() > 0.3

    def test_gini_trivial_systems(self):
        assert GlobalFairness().gini_coefficient() == 0.0
        single = GlobalFairness()
        single.record_hosting(1, 5)
        assert single.gini_coefficient() == 0.0


class TestClientEnforcement:
    def test_debtor_gets_refused(self):
        swarm = BackupSwarm(
            data_blocks=4, parity_blocks=4, quota_blocks=100, seed=1,
            fairness_factor=1.0,
        )
        nodes = [swarm.add_node() for _ in range(10)]
        swarm.tick(5)
        owner = nodes[0]
        # First backup fits inside the grace allowance per partner.
        first = BackupTask(owner, archive_size=2048).run({"a": b"x" * 600})
        assert first.complete
        # Hammer the same partners without reciprocating: the per-partner
        # ceiling (grace=4 with factor 1 and zero reciprocity) eventually
        # refuses.
        target = next(p for p in first.placements[0].partners if p >= 0)
        partner = swarm.nodes[target]
        refusals = 0
        from repro.net.message import StoreRequest, StoreReply
        for index in range(10):
            reply = swarm.transport.send(StoreRequest(
                sender=owner.peer_id, recipient=target,
                archive_id=f"extra-{index}", block_index=0, payload=b"y",
            ))
            if isinstance(reply, StoreReply) and not reply.accepted:
                refusals += 1
        assert refusals > 0
        assert partner.ledger.balance_with(owner.peer_id).debt > 0

    def test_no_enforcement_without_factor(self):
        swarm = BackupSwarm(
            data_blocks=4, parity_blocks=4, quota_blocks=100, seed=1,
        )
        nodes = [swarm.add_node() for _ in range(10)]
        swarm.tick(5)
        from repro.net.message import StoreRequest, StoreReply
        accepted = 0
        for index in range(20):
            reply = swarm.transport.send(StoreRequest(
                sender=0, recipient=1,
                archive_id=f"a-{index}", block_index=0, payload=b"z",
            ))
            if isinstance(reply, StoreReply) and reply.accepted:
                accepted += 1
        assert accepted == 20

    def test_swarm_validates_factor(self):
        with pytest.raises(ValueError):
            BackupSwarm(fairness_factor=0)

    def test_ledgers_symmetric_after_backup(self, small_swarm):
        owner = small_swarm.nodes[0]
        report = BackupTask(owner, archive_size=2048).run({"f": b"q" * 700})
        placement = report.placements[0]
        for index, partner_id in enumerate(placement.partners):
            if partner_id < 0:
                continue
            partner = small_swarm.nodes[partner_id]
            held = partner.ledger.balance_with(owner.peer_id).stored_for_partner
            credited = owner.ledger.balance_with(partner_id).stored_by_partner
            assert held >= 1
            assert credited >= 1
