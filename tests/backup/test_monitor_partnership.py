"""Tests for the availability monitor and the partnership handshake."""

import numpy as np
import pytest

from repro.backup.monitor import AvailabilityMonitor
from repro.backup.partnership import PartnershipProtocol, answer_proposal
from repro.core.acceptance import AcceptancePolicy, UniformAcceptancePolicy
from repro.net.message import (
    AvailabilityProbe,
    AvailabilityReport,
    PartnershipProposal,
)
from repro.net.transport import InMemoryTransport


def report_handler(peer_id, availability=0.8):
    def handle(message):
        if isinstance(message, AvailabilityProbe):
            return AvailabilityReport(
                sender=peer_id,
                recipient=message.sender,
                availability=availability,
                observed_rounds=message.window_rounds,
            )
        return None

    return handle


@pytest.fixture
def transport():
    t = InMemoryTransport()
    t.register(1, report_handler(1))
    t.register(2, report_handler(2, availability=0.4))
    return t


class TestAvailabilityMonitor:
    def test_probe_online_partner(self, transport):
        monitor = AvailabilityMonitor(transport, owner_id=1, window_rounds=100)
        report = monitor.probe(2)
        assert report is not None
        assert report.availability == 0.4
        assert monitor.is_visible(2)

    def test_probe_offline_partner(self, transport):
        transport.set_online(2, False)
        monitor = AvailabilityMonitor(transport, owner_id=1, window_rounds=100)
        assert monitor.probe(2) is None
        assert not monitor.is_visible(2)

    def test_departure_threshold(self, transport):
        transport.set_online(2, False)
        monitor = AvailabilityMonitor(
            transport, owner_id=1, window_rounds=100, departure_threshold=3
        )
        for _ in range(2):
            monitor.probe(2)
        assert not monitor.presumed_departed(2)
        monitor.probe(2)
        assert monitor.presumed_departed(2)

    def test_reappearance_resets_misses(self, transport):
        monitor = AvailabilityMonitor(
            transport, owner_id=1, window_rounds=100, departure_threshold=2
        )
        transport.set_online(2, False)
        monitor.probe(2)
        transport.set_online(2, True)
        monitor.probe(2)
        assert monitor.ledger.record_for(2).consecutive_misses == 0

    def test_measured_availability(self, transport):
        monitor = AvailabilityMonitor(transport, owner_id=1, window_rounds=100)
        assert monitor.measured_availability(2) is None
        monitor.probe(2)
        assert monitor.measured_availability(2) == 0.4

    def test_validation(self, transport):
        with pytest.raises(ValueError):
            AvailabilityMonitor(transport, 1, window_rounds=0)
        with pytest.raises(ValueError):
            AvailabilityMonitor(transport, 1, window_rounds=10, departure_threshold=0)


class TestAnswerProposal:
    def proposal(self, age=100.0):
        return PartnershipProposal(sender=5, recipient=6, proposer_age=age)

    def test_full_store_refuses(self):
        rng = np.random.default_rng(0)
        answer = answer_proposal(
            self.proposal(), own_age=0, acceptance=UniformAcceptancePolicy(),
            rng=rng, has_capacity=False,
        )
        assert not answer.accepted

    def test_uniform_acceptance_accepts(self):
        rng = np.random.default_rng(0)
        answer = answer_proposal(
            self.proposal(), own_age=0, acceptance=UniformAcceptancePolicy(),
            rng=rng, has_capacity=True,
        )
        assert answer.accepted
        assert answer.recipient == 5

    def test_old_candidate_rarely_accepts_newborn(self):
        policy = AcceptancePolicy(age_cap=100)
        rng = np.random.default_rng(0)
        accepted = sum(
            answer_proposal(
                PartnershipProposal(sender=5, recipient=6, proposer_age=0.0),
                own_age=100.0,
                acceptance=policy,
                rng=rng,
                has_capacity=True,
            ).accepted
            for _ in range(2000)
        )
        # f(100, 0) = 1/100: about 1% acceptance.
        assert accepted / 2000 == pytest.approx(0.01, abs=0.01)


class TestPartnershipProtocol:
    def test_mutual_agreement_with_uniform_policy(self, transport):
        # Override handlers so candidates answer proposals.
        policy = UniformAcceptancePolicy()
        rng = np.random.default_rng(3)
        transport.register(
            2,
            lambda m: answer_proposal(m, 50.0, policy, rng, True)
            if isinstance(m, PartnershipProposal)
            else None,
        )
        protocol = PartnershipProtocol(transport, policy, rng)
        outcome = protocol.propose(1, 10.0, 2, 50.0)
        assert outcome.agreed

    def test_offline_candidate_is_network_failure(self, transport):
        transport.set_online(2, False)
        protocol = PartnershipProtocol(
            transport, UniformAcceptancePolicy(), np.random.default_rng(0)
        )
        outcome = protocol.propose(1, 10.0, 2, 50.0)
        assert not outcome.agreed
        assert outcome.refused_by == "network"

    def test_candidate_refusal(self, transport):
        policy = AcceptancePolicy(age_cap=100)
        rng = np.random.default_rng(1)
        # Candidate is at the cap, proposer newborn: ~1% acceptance,
        # so with a fixed seed the first answer is a refusal.
        transport.register(
            2,
            lambda m: answer_proposal(m, 100.0, policy, rng, True)
            if isinstance(m, PartnershipProposal)
            else None,
        )
        protocol = PartnershipProtocol(transport, policy, rng)
        outcome = protocol.propose(1, 0.0, 2, 100.0)
        assert not outcome.agreed
        assert outcome.refused_by == "candidate"
