"""Tests for the byte-level swarm and node plumbing."""

import pytest

from repro.backup.client import BackupSwarm
from repro.net.message import (
    AvailabilityProbe,
    AvailabilityReport,
    PartnershipAnswer,
    PartnershipProposal,
    StoreReply,
    StoreRequest,
)


@pytest.fixture
def swarm():
    s = BackupSwarm(data_blocks=4, parity_blocks=4, quota_blocks=8, seed=3)
    for _ in range(6):
        s.add_node()
    return s


class TestSwarmMembership:
    def test_sequential_peer_ids(self, swarm):
        assert sorted(swarm.nodes) == list(range(6))

    def test_nodes_registered_on_transport_and_dht(self, swarm):
        assert len(swarm.transport) == 6
        assert len(swarm.dht) == 6

    def test_default_user_keys_distinct(self, swarm):
        keys = {node.user_key for node in swarm.nodes.values()}
        assert len(keys) == 6

    def test_custom_user_key(self, swarm):
        node = swarm.add_node(user_key=b"my-key" * 6)
        assert node.user_key == b"my-key" * 6

    def test_set_online_everywhere(self, swarm):
        swarm.set_online(2, False)
        assert not swarm.nodes[2].online
        assert not swarm.transport.is_online(2)
        assert swarm.transport.try_send(
            StoreRequest(sender=0, recipient=2, archive_id="a", payload=b"x")
        ) is None

    def test_default_threshold_midway(self, swarm):
        # k=4, m=4 -> threshold defaults to k + ceil(m/2) = 6.
        assert swarm.policy.repair_threshold == 6


class TestClockAndAges:
    def test_ages_grow_with_ticks(self, swarm):
        assert swarm.nodes[0].age() == 0
        swarm.tick(48)
        assert swarm.nodes[0].age() == 48

    def test_later_joiners_are_younger(self, swarm):
        swarm.tick(100)
        newcomer = swarm.add_node()
        assert newcomer.age() == 0
        assert swarm.nodes[0].age() == 100

    def test_availability_tracks_downtime(self, swarm):
        swarm.set_online(1, False)
        swarm.tick(50)
        swarm.set_online(1, True)
        swarm.tick(50)
        assert swarm.nodes[1].availability() == pytest.approx(0.5)

    def test_negative_tick_rejected(self, swarm):
        with pytest.raises(ValueError):
            swarm.tick(-1)


class TestNodeHandlers:
    def test_store_then_fetch(self, swarm):
        reply = swarm.transport.send(
            StoreRequest(sender=0, recipient=1, archive_id="a",
                         block_index=2, payload=b"block-bytes")
        )
        assert isinstance(reply, StoreReply) and reply.accepted
        fetched = swarm.nodes[1].store.fetch(0, "a", 2)
        assert fetched.payload == b"block-bytes"

    def test_store_refused_when_quota_full(self, swarm):
        for index in range(8):
            swarm.transport.send(
                StoreRequest(sender=0, recipient=1, archive_id="a",
                             block_index=index, payload=b"x")
            )
        overflow = swarm.transport.send(
            StoreRequest(sender=0, recipient=1, archive_id="b",
                         block_index=0, payload=b"x")
        )
        assert not overflow.accepted
        assert "full" in overflow.reason

    def test_availability_probe(self, swarm):
        swarm.tick(10)
        reply = swarm.transport.send(
            AvailabilityProbe(sender=0, recipient=1, window_rounds=100)
        )
        assert isinstance(reply, AvailabilityReport)
        assert reply.availability == 1.0

    def test_partnership_proposal_answered(self, swarm):
        reply = swarm.transport.send(
            PartnershipProposal(sender=0, recipient=1, proposer_age=5.0)
        )
        assert isinstance(reply, PartnershipAnswer)

    def test_full_node_refuses_partnership(self, swarm):
        for index in range(8):
            swarm.transport.send(
                StoreRequest(sender=0, recipient=1, archive_id="a",
                             block_index=index, payload=b"x")
            )
        reply = swarm.transport.send(
            PartnershipProposal(sender=2, recipient=1, proposer_age=5.0)
        )
        assert not reply.accepted


class TestCandidates:
    def test_excludes_owner_and_offline_and_full(self, swarm):
        owner = swarm.nodes[0]
        swarm.set_online(1, False)
        for index in range(8):
            swarm.transport.send(
                StoreRequest(sender=3, recipient=2, archive_id="a",
                             block_index=index, payload=b"x")
            )
        candidates = {c.peer_id for c in swarm.candidates_for(owner)}
        assert 0 not in candidates          # the owner itself
        assert 1 not in candidates          # offline
        assert 2 not in candidates          # quota full
        assert {3, 4, 5} <= candidates

    def test_explicit_exclusions(self, swarm):
        owner = swarm.nodes[0]
        candidates = {c.peer_id for c in swarm.candidates_for(owner, exclude={4, 5})}
        assert not candidates & {4, 5}

    def test_candidates_carry_age_and_availability(self, swarm):
        swarm.tick(24)
        candidate = swarm.candidates_for(swarm.nodes[0])[0]
        assert candidate.age == 24
        assert candidate.availability == 1.0
