"""Tests for the statistical helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    bootstrap_mean,
    difference_interval,
    dominates,
    monotone_trend,
    summarize_ratio,
)


class TestBootstrapMean:
    def test_interval_contains_true_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, 200)
        interval = bootstrap_mean(samples)
        assert interval.contains(10.0)
        assert interval.lower < interval.mean < interval.upper

    def test_tight_for_constant_data(self):
        interval = bootstrap_mean([5.0] * 20)
        assert interval.lower == interval.upper == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], resamples=10)

    def test_excludes_zero(self):
        interval = bootstrap_mean([3.0, 4.0, 5.0, 4.5])
        assert interval.excludes_zero()


class TestDifferenceInterval:
    def test_clear_separation(self):
        rng = np.random.default_rng(1)
        a = rng.normal(10, 1, 100)
        b = rng.normal(5, 1, 100)
        interval = difference_interval(a, b)
        assert interval.excludes_zero()
        assert interval.mean == pytest.approx(5.0, abs=0.5)

    def test_overlapping_groups(self):
        rng = np.random.default_rng(2)
        a = rng.normal(5, 3, 30)
        b = rng.normal(5, 3, 30)
        interval = difference_interval(a, b)
        assert interval.contains(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            difference_interval([], [1.0])


class TestDominates:
    def test_clear_dominance(self):
        a = list(range(50, 100))
        b = list(range(0, 50))
        significant, p_value = dominates(a, b)
        assert significant
        assert p_value < 0.001

    def test_reverse_is_not_significant(self):
        a = list(range(0, 50))
        b = list(range(50, 100))
        significant, p_value = dominates(a, b)
        assert not significant
        assert p_value > 0.5

    def test_identical_constant_groups(self):
        significant, p_value = dominates([3.0, 3.0], [3.0, 3.0])
        assert not significant
        assert p_value == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            dominates([], [1.0])
        with pytest.raises(ValueError):
            dominates([1.0], [1.0], significance=0)


class TestMonotoneTrend:
    def test_perfect_increase(self):
        tau, p_value = monotone_trend([1, 2, 3, 4, 5], [10, 20, 30, 40, 50])
        assert tau == pytest.approx(1.0)
        assert p_value < 0.05

    def test_perfect_decrease(self):
        tau, _ = monotone_trend([1, 2, 3, 4], [9, 7, 4, 1])
        assert tau == pytest.approx(-1.0)

    def test_no_trend(self):
        tau, _ = monotone_trend([1, 2, 3, 4, 5, 6], [3, 1, 4, 1, 5, 2])
        assert abs(tau) < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            monotone_trend([1, 2], [1, 2])
        with pytest.raises(ValueError):
            monotone_trend([1, 2, 3], [1, 2])


class TestSummarizeRatio:
    def test_paired_ratio(self):
        assert summarize_ratio([10, 20], [2, 4]) == pytest.approx(5.0)

    def test_zero_denominators_skipped(self):
        assert summarize_ratio([10, 20], [0, 4]) == pytest.approx(5.0)

    def test_all_zero_denominators(self):
        assert summarize_ratio([10], [0]) == float("inf")
        assert summarize_ratio([0], [0]) == 1.0


class TestOnSimulationData:
    def test_fig1_trend_is_statistically_monotone(self):
        """The figure 1 claim as a Kendall-tau statement on real runs."""
        from repro.analysis.aggregate import sweep_rates, threshold_sweep
        from repro.sim.config import SimulationConfig

        config = SimulationConfig(
            population=120, rounds=1500, data_blocks=8, parity_blocks=8,
            repair_threshold=10, quota=24, seed=0,
        )
        sweep = threshold_sweep(config, thresholds=[9, 10, 12, 14], seeds=[0])
        rates = sweep_rates(sweep, "repairs")
        thresholds = sorted(rates)
        totals = [
            sum(agg.mean for agg in rates[t].values()) for t in thresholds
        ]
        tau, _ = monotone_trend(thresholds, totals)
        assert tau > 0.5
