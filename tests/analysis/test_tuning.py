"""Tests for the automated threshold-tuning rule."""

import pytest

from repro.analysis.aggregate import Aggregate
from repro.analysis.tuning import choose_threshold


def sweep(values):
    """Build a fake sweep: threshold -> {'all': Aggregate(value)}."""
    return {t: {"all": Aggregate.of([v])} for t, v in values.items()}


class TestChooseThreshold:
    def test_paper_scenario(self):
        """Losses flatten by the middle of the sweep; repairs keep
        growing: pick the smallest flat-loss threshold (the paper's 148)."""
        losses = sweep({132: 2.5, 140: 1.0, 148: 0.05, 156: 0.05, 180: 0.05})
        repairs = sweep({132: 0.5, 140: 0.8, 148: 1.2, 156: 2.0, 180: 8.0})
        recommendation = choose_threshold(repairs, losses)
        assert recommendation.threshold == 148
        assert recommendation.candidates == (148, 156, 180)

    def test_explicit_acceptable_loss(self):
        losses = sweep({10: 3.0, 12: 1.5, 14: 0.4})
        repairs = sweep({10: 1.0, 12: 2.0, 14: 3.0})
        recommendation = choose_threshold(repairs, losses, acceptable_loss=2.0)
        assert recommendation.threshold == 12

    def test_all_lossless_picks_smallest(self):
        losses = sweep({10: 0.0, 12: 0.0})
        repairs = sweep({10: 1.0, 12: 2.0})
        assert choose_threshold(repairs, losses).threshold == 10

    def test_mismatched_sweeps_rejected(self):
        with pytest.raises(ValueError):
            choose_threshold(sweep({10: 1.0}), sweep({12: 1.0}))

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            choose_threshold({}, {})

    def test_explain_mentions_threshold(self):
        losses = sweep({10: 0.0})
        repairs = sweep({10: 1.0})
        text = choose_threshold(repairs, losses).explain()
        assert "threshold 10" in text

    def test_on_real_sweep(self):
        """End to end on simulation output: the rule lands on a
        threshold whose losses are at the sweep's floor."""
        from repro.analysis.aggregate import sweep_rates, threshold_sweep
        from repro.sim.config import SimulationConfig

        config = SimulationConfig(
            population=100, rounds=1200, data_blocks=8, parity_blocks=8,
            repair_threshold=10, quota=24, seed=0,
        )
        runs = threshold_sweep(config, thresholds=[9, 11, 13], seeds=[0])
        repairs = sweep_rates(runs, "repairs")
        losses = sweep_rates(runs, "losses")
        recommendation = choose_threshold(repairs, losses)
        assert recommendation.threshold in (9, 11, 13)
        floor = min(
            sum(a.mean for a in losses[t].values()) for t in (9, 11, 13)
        )
        assert recommendation.loss_rate == pytest.approx(floor, abs=1e-9)
