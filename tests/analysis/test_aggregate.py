"""Tests for result aggregation across seeds and sweeps."""

import pytest

from repro.analysis.aggregate import (
    Aggregate,
    aggregate_loss_rates,
    aggregate_repair_rates,
    run_replications,
    sweep_rates,
    threshold_sweep,
)
from repro.sim.config import SimulationConfig


def small_config():
    return SimulationConfig(
        population=60,
        rounds=400,
        data_blocks=8,
        parity_blocks=8,
        repair_threshold=10,
        quota=24,
        seed=0,
    )


class TestAggregate:
    def test_single_value(self):
        aggregate = Aggregate.of([5.0])
        assert aggregate.mean == 5.0
        assert aggregate.std == 0.0
        assert aggregate.count == 1

    def test_known_statistics(self):
        aggregate = Aggregate.of([1.0, 2.0, 3.0])
        assert aggregate.mean == pytest.approx(2.0)
        assert aggregate.std == pytest.approx(1.0)
        assert aggregate.minimum == 1.0
        assert aggregate.maximum == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Aggregate.of([])


class TestReplications:
    def test_one_result_per_seed(self):
        results = run_replications(small_config(), seeds=[0, 1])
        assert len(results) == 2
        assert results[0].config.seed == 0
        assert results[1].config.seed == 1

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_replications(small_config(), seeds=[])

    def test_aggregate_covers_categories(self):
        results = run_replications(small_config(), seeds=[0, 1])
        rates = aggregate_repair_rates(results)
        assert set(rates) == set(small_config().categories.names())
        assert all(a.count == 2 for a in rates.values())

    def test_loss_aggregation(self):
        results = run_replications(small_config(), seeds=[0])
        rates = aggregate_loss_rates(results)
        assert all(a.mean >= 0 for a in rates.values())


class TestThresholdSweep:
    def test_sweep_structure(self):
        sweep = threshold_sweep(small_config(), thresholds=[9, 12], seeds=[0])
        assert set(sweep) == {9, 12}
        assert sweep[9][0].config.repair_threshold == 9

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ValueError):
            threshold_sweep(small_config(), thresholds=[], seeds=[0])

    def test_sweep_rates_repairs(self):
        sweep = threshold_sweep(small_config(), thresholds=[9, 12], seeds=[0])
        rates = sweep_rates(sweep, metric="repairs")
        assert set(rates) == {9, 12}
        assert "Newcomers" in rates[9]

    def test_sweep_rates_bad_metric(self):
        sweep = threshold_sweep(small_config(), thresholds=[9], seeds=[0])
        with pytest.raises(ValueError):
            sweep_rates(sweep, metric="vibes")
