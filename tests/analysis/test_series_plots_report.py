"""Tests for series helpers, ASCII plots and report tables."""

import pytest

from repro.analysis.aggregate import Aggregate
from repro.analysis.plots import ascii_chart, sparkline
from repro.analysis.report import (
    dict_report,
    format_aggregate,
    format_table,
    rates_report,
    sweep_report,
)
from repro.analysis.series import (
    downsample,
    final_value,
    growth_between,
    is_non_decreasing,
    to_days,
    validate_series,
    value_at,
)


class TestSeries:
    def test_validate_accepts_monotone_x(self):
        validate_series([(0, 1), (1, 5), (1, 2)])

    def test_validate_rejects_backwards_x(self):
        with pytest.raises(ValueError):
            validate_series([(2, 1), (1, 1)])

    def test_is_non_decreasing(self):
        assert is_non_decreasing([(0, 1), (1, 1), (2, 3)])
        assert not is_non_decreasing([(0, 3), (1, 1)])

    def test_final_value(self):
        assert final_value([(0, 1), (5, 9)]) == 9
        assert final_value([]) == 0.0

    def test_downsample_keeps_ends(self):
        series = [(i, i * i) for i in range(100)]
        thinned = downsample(series, 10)
        assert thinned[0] == series[0]
        assert thinned[-1] == series[-1]
        assert len(thinned) <= 11

    def test_downsample_short_series_untouched(self):
        series = [(0, 1), (1, 2)]
        assert downsample(series, 10) == series

    def test_downsample_validates(self):
        with pytest.raises(ValueError):
            downsample([(0, 1)], 1)

    def test_to_days(self):
        assert to_days([(48, 5)]) == [(2.0, 5)]
        with pytest.raises(ValueError):
            to_days([(1, 1)], rounds_per_day=0)

    def test_value_at_step_interpolation(self):
        series = [(10, 1.0), (20, 2.0)]
        assert value_at(series, 5) == 0.0
        assert value_at(series, 15) == 1.0
        assert value_at(series, 25) == 2.0

    def test_growth_between(self):
        series = [(0, 0.0), (10, 4.0), (20, 10.0)]
        assert growth_between(series, 10, 20) == pytest.approx(6.0)
        with pytest.raises(ValueError):
            growth_between(series, 20, 10)


class TestAsciiChart:
    def test_contains_legend_and_axes(self):
        chart = ascii_chart(
            {"a": [(0, 1), (1, 2)], "b": [(0, 2), (1, 1)]},
            title="demo",
        )
        assert "demo" in chart
        assert "legend:" in chart
        assert "a" in chart and "b" in chart

    def test_log_scale_skips_non_positive(self):
        chart = ascii_chart({"a": [(0, 0), (1, 10), (2, 100)]}, log_y=True)
        assert "legend:" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({"a": []}, title="t")

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, 1)]}, width=5, height=2)

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart({"flat": [(0, 5), (10, 5)]})
        assert "flat" in chart


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant(self):
        line = sparkline([3, 3, 3])
        assert len(set(line)) == 1

    def test_trend_visible(self):
        line = sparkline(list(range(50)), width=25)
        assert line[0] != line[-1]


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_format_table_markdown(self):
        text = format_table(["a"], [["x"]], markdown=True)
        assert text.startswith("| a")
        assert "|-" in text.split("\n")[1]

    def test_format_table_validates(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_aggregate(self):
        text = format_aggregate(Aggregate.of([1.0, 3.0]))
        assert "±" in text

    def test_rates_report(self):
        rates = {"Newcomers": Aggregate.of([0.5, 0.7])}
        text = rates_report(rates, "repairs/1000")
        assert "Newcomers" in text
        assert "repairs/1000" in text

    def test_sweep_report(self):
        sweep = {
            9: {"Newcomers": Aggregate.of([1.0])},
            12: {"Newcomers": Aggregate.of([2.0])},
        }
        text = sweep_report(sweep, ["Newcomers", "Ghost"])
        assert "9" in text and "12" in text
        assert "-" in text  # missing category placeholder

    def test_dict_report(self):
        text = dict_report("title", {"k": "v"})
        assert text.startswith("title")
        assert "k" in text
