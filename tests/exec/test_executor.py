"""Executor tests: backend determinism, caching, progress, reduction.

The load-bearing guarantee: one spec produces byte-identical serialized
results through the serial backend, the process-pool backend and a
cache round trip.
"""

import pytest

from repro.exec import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    ExperimentSpec,
    ResultCache,
    SweepExecutor,
    canonical_json,
    run_experiment,
)
from repro.sim.config import SimulationConfig


def small_config():
    return SimulationConfig(
        population=40,
        rounds=250,
        data_blocks=8,
        parity_blocks=8,
        repair_threshold=10,
        quota=24,
        seed=0,
    )


def small_spec(reduce=None):
    base = small_config()
    return ExperimentSpec(
        name="exec-test",
        build=lambda params: base.with_threshold(params["threshold"]),
        grid={"threshold": (9, 11)},
        seeds=(0, 1),
        reduce=reduce,
    )


def serialized(sweep):
    return [canonical_json(result.to_dict()) for result in sweep.results]


class TestBackendDeterminism:
    def test_serial_and_pool_results_byte_identical(self):
        serial = SweepExecutor(workers=1).run(small_spec())
        pooled = SweepExecutor(workers=2).run(small_spec())
        assert serialized(serial) == serialized(pooled)

    def test_worker_count_does_not_change_results(self):
        two = SweepExecutor(workers=2).run(small_spec())
        four = SweepExecutor(workers=4).run(small_spec())
        assert serialized(two) == serialized(four)

    def test_results_align_with_cells(self):
        sweep = SweepExecutor(workers=2).run(small_spec())
        for cell, result in sweep:
            assert result.config.repair_threshold == cell.param("threshold")
            assert result.config.seed == cell.seed

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(workers=0)


class TestBackendRegistry:
    def test_shipped_backends_registered(self):
        for name in ("serial", "process", "distributed"):
            assert name in EXECUTION_BACKENDS
            assert issubclass(EXECUTION_BACKENDS.get(name), ExecutionBackend)

    def test_backend_resolution_follows_worker_count(self):
        assert SweepExecutor().backend_name == "serial"
        assert SweepExecutor(workers=4).backend_name == "process"

    def test_explicit_backend_overrides_worker_count(self):
        assert SweepExecutor(workers=4, backend="serial").backend_name == "serial"

    def test_unknown_backend_rejected_with_choices(self):
        with pytest.raises(ValueError) as error:
            SweepExecutor(backend="carrier-pigeon")
        assert "serial" in str(error.value)

    def test_explicit_serial_backend_runs(self):
        sweep = SweepExecutor(backend="serial").run(small_spec())
        assert sweep.stats.simulated == 4

    def test_user_registered_backend_is_resolved(self):
        calls = []

        @EXECUTION_BACKENDS.register("recording-serial")
        class RecordingSerial(ExecutionBackend):
            name = "recording-serial"

            def execute(self, executor, cells, pending, digests, finish):
                calls.append(len(pending))
                EXECUTION_BACKENDS.get("serial")().execute(
                    executor, cells, pending, digests, finish
                )

        try:
            sweep = SweepExecutor(backend="recording-serial").run(small_spec())
        finally:
            EXECUTION_BACKENDS.unregister("recording-serial")
        assert calls == [4]
        assert sweep.stats.simulated == 4


class TestCache:
    def test_cold_run_simulates_everything(self, tmp_path):
        executor = SweepExecutor(cache=ResultCache(tmp_path))
        sweep = executor.run(small_spec())
        assert sweep.stats.simulated == 4
        assert sweep.stats.cache_hits == 0

    def test_warm_rerun_simulates_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = SweepExecutor(cache=cache).run(small_spec())
        second = SweepExecutor(cache=cache).run(small_spec())
        assert second.stats.simulated == 0
        assert second.stats.cache_hits == 4
        assert serialized(first) == serialized(second)

    def test_cache_shared_across_overlapping_specs(self, tmp_path):
        # Figures 1 and 2 share their sweep cells; the cache models that.
        cache = ResultCache(tmp_path)
        SweepExecutor(cache=cache).run(small_spec())
        base = small_config()
        overlapping = ExperimentSpec(
            name="other-name",  # the name does not affect cache keys
            build=lambda params: base.with_threshold(params["threshold"]),
            grid={"threshold": (11, 13)},
            seeds=(0, 1),
        )
        sweep = SweepExecutor(cache=cache).run(overlapping)
        assert sweep.stats.cache_hits == 2   # threshold 11, both seeds
        assert sweep.stats.simulated == 2    # threshold 13, both seeds

    def test_changed_parameter_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(cache=cache).run(small_spec())
        changed = ExperimentSpec(
            name="exec-test",
            build=lambda params: small_config()
            .with_threshold(params["threshold"]),
            grid={"threshold": (9, 11)},
            seeds=(2,),  # new seed = new cell content
        )
        sweep = SweepExecutor(cache=cache).run(changed)
        assert sweep.stats.simulated == 2

    def test_corrupted_entry_behaves_like_miss(self, tmp_path):
        from repro.exec import config_digest

        cache = ResultCache(tmp_path)
        spec = small_spec()
        SweepExecutor(cache=cache).run(spec)
        victim = config_digest(spec.cells()[0].config)
        cache.path_for(victim).write_text("{ truncated", encoding="utf-8")
        sweep = SweepExecutor(cache=cache).run(spec)
        assert sweep.stats.simulated == 1
        assert sweep.stats.cache_hits == 3

    def test_memo_shares_cells_without_disk_cache(self):
        # Figures 1 and 2 share one executor: the second sweep over the
        # same cells must not re-simulate even with no cache directory.
        executor = SweepExecutor()
        first = executor.run(small_spec())
        second = executor.run(small_spec())
        assert first.stats.simulated == 4
        assert second.stats.simulated == 0
        assert second.stats.cache_hits == 4
        assert serialized(first) == serialized(second)

    def test_memo_is_per_executor(self):
        SweepExecutor().run(small_spec())
        fresh = SweepExecutor().run(small_spec())
        assert fresh.stats.simulated == 4

    def test_digest_salted_with_code_version(self, monkeypatch):
        # A schema bump must invalidate every existing entry, so stale
        # results can never be served after simulator changes.
        from repro.exec import cache as cache_module
        from repro.exec import config_digest

        spec = small_spec()
        before = config_digest(spec.cells()[0].config)
        monkeypatch.setattr(cache_module, "CACHE_SCHEMA_VERSION", 2)
        assert config_digest(spec.cells()[0].config) != before

    def test_executor_accumulates_stats(self, tmp_path):
        executor = SweepExecutor(cache=ResultCache(tmp_path))
        executor.run(small_spec())
        executor.run(small_spec())
        assert executor.stats.simulated == 4
        assert executor.stats.cache_hits == 4
        assert executor.stats.cells == 8


class TestProgressAndReduce:
    def test_progress_callback_sees_every_cell(self):
        seen = []
        executor = SweepExecutor(
            progress=lambda done, total, cell, source: seen.append(
                (done, total, source)
            )
        )
        executor.run(small_spec())
        assert len(seen) == 4
        assert [entry[0] for entry in seen] == [1, 2, 3, 4]
        assert all(entry[1] == 4 for entry in seen)
        assert all(entry[2] == "run" for entry in seen)

    def test_progress_reports_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(cache=cache).run(small_spec())
        seen = []
        SweepExecutor(
            cache=cache,
            progress=lambda done, total, cell, source: seen.append(source),
        ).run(small_spec())
        assert seen == ["cache"] * 4

    def test_run_experiment_applies_reducer(self):
        artifact = run_experiment(
            small_spec(reduce=lambda sweep: sorted(sweep.by_axis("threshold")))
        )
        assert artifact == [9, 11]

    def test_run_experiment_without_reducer_returns_sweep(self):
        sweep = run_experiment(small_spec())
        assert len(sweep) == 4

    def test_by_axis_unknown_axis_rejected(self):
        sweep = SweepExecutor().run(small_spec())
        with pytest.raises(ValueError):
            sweep.by_axis("quota")
