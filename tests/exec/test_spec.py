"""Tests for the declarative experiment specs."""

import pytest

from repro.exec import ExperimentSpec
from repro.sim.config import SimulationConfig


def small_config():
    return SimulationConfig(
        population=40,
        rounds=200,
        data_blocks=8,
        parity_blocks=8,
        repair_threshold=10,
        quota=24,
        seed=0,
    )


def threshold_spec(thresholds=(9, 11), seeds=(0, 1)):
    base = small_config()
    return ExperimentSpec(
        name="test-sweep",
        build=lambda params: base.with_threshold(params["threshold"]),
        grid={"threshold": thresholds},
        seeds=seeds,
    )


class TestSpecValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="", build=lambda p: small_config())

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(
                name="x", build=lambda p: small_config(), seeds=()
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(
                name="x",
                build=lambda p: small_config(),
                grid={"threshold": ()},
            )


class TestCells:
    def test_cell_count(self):
        assert threshold_spec().cell_count == 4
        assert threshold_spec(thresholds=(9,), seeds=(0,)).cell_count == 1

    def test_gridless_spec_has_one_cell_per_seed(self):
        spec = ExperimentSpec(
            name="replications",
            build=lambda params: small_config(),
            seeds=(0, 1, 2),
        )
        cells = spec.cells()
        assert len(cells) == 3
        assert [cell.seed for cell in cells] == [0, 1, 2]
        assert all(cell.params == () for cell in cells)

    def test_cells_order_axis_outer_seed_inner(self):
        cells = threshold_spec().cells()
        assert [(c.param("threshold"), c.seed) for c in cells] == [
            (9, 0), (9, 1), (11, 0), (11, 1),
        ]
        assert [c.index for c in cells] == [0, 1, 2, 3]

    def test_cell_config_carries_param_and_seed(self):
        for cell in threshold_spec().cells():
            assert cell.config.repair_threshold == cell.param("threshold")
            assert cell.config.seed == cell.seed

    def test_build_is_not_responsible_for_seed(self):
        # The builder returns one config; the spec applies per-cell seeds.
        spec = threshold_spec(seeds=(5,))
        assert all(cell.config.seed == 5 for cell in spec.cells())

    def test_cell_label_mentions_params_and_seed(self):
        cell = threshold_spec().cells()[0]
        assert "threshold=9" in cell.label()
        assert "seed=0" in cell.label()

    def test_multi_axis_product(self):
        base = small_config()
        spec = ExperimentSpec(
            name="grid",
            build=lambda p: base.with_threshold(p["threshold"]),
            grid={"threshold": (9, 11), "flavour": ("a", "b", "c")},
            seeds=(0,),
        )
        assert spec.cell_count == 6
        assert len(spec.cells()) == 6
