"""Distributed backend tests: leases, failure modes, byte-identity.

The load-bearing guarantees, straight from the ISSUE-4 acceptance
criteria: a sweep sharded across concurrent worker processes over a
shared cache directory is byte-identical to the serial backend; two
workers racing for one cell produce exactly one winner; a worker killed
mid-cell loses only that cell (its lease expires and the cell re-runs);
and a resumed sweep reuses every published cell.
"""

import json
import multiprocessing
import threading
import time
from pathlib import Path

import pytest

from repro.exec import (
    ExperimentSpec,
    LeaseDirectory,
    ResultCache,
    SweepExecutor,
    canonical_json,
    config_digest,
)
from repro.exec.executor import _execute_cell
from repro.sim.config import SimulationConfig

DIGEST = "ab" * 32  # any digest-shaped key; leases never parse it


def small_config():
    return SimulationConfig(
        population=40,
        rounds=250,
        data_blocks=8,
        parity_blocks=8,
        repair_threshold=10,
        quota=24,
        seed=0,
    )


def small_spec():
    base = small_config()
    return ExperimentSpec(
        name="dist-test",
        build=lambda params: base.with_threshold(params["threshold"]),
        grid={"threshold": (9, 11)},
        seeds=(0, 1),
    )


def serialized(sweep):
    return [canonical_json(result.to_dict()) for result in sweep.results]


def _drain(cache_dir, out_path, worker_id, lease_ttl=30.0):
    """Child-process entry point: run the shared sweep, dump stats.

    Module-level so ``multiprocessing`` can pickle it; the spec is
    rebuilt locally because specs carry lambdas.
    """
    sweep = SweepExecutor(
        cache=ResultCache(cache_dir),
        backend="distributed",
        worker_id=worker_id,
        lease_ttl=lease_ttl,
        poll_interval=0.05,
    ).run(small_spec())
    Path(out_path).write_text(
        json.dumps(
            {
                "worker": worker_id,
                "simulated": sweep.stats.simulated,
                "cache_hits": sweep.stats.cache_hits,
                "results": serialized(sweep),
            }
        ),
        encoding="utf-8",
    )


class TestLeaseDirectory:
    def test_acquire_blocks_second_worker(self, tmp_path):
        first = LeaseDirectory(tmp_path, worker_id="w1")
        second = LeaseDirectory(tmp_path, worker_id="w2")
        assert first.try_acquire(DIGEST)
        assert not second.try_acquire(DIGEST)

    def test_release_frees_the_cell(self, tmp_path):
        first = LeaseDirectory(tmp_path, worker_id="w1")
        second = LeaseDirectory(tmp_path, worker_id="w2")
        assert first.try_acquire(DIGEST)
        first.release(DIGEST)
        assert second.try_acquire(DIGEST)

    def test_racing_claims_have_exactly_one_winner(self, tmp_path):
        contenders = 8
        barrier = threading.Barrier(contenders)
        wins = []

        def contend(worker_id):
            leases = LeaseDirectory(tmp_path, worker_id=worker_id)
            barrier.wait()
            if leases.try_acquire(DIGEST):
                wins.append(worker_id)

        threads = [
            threading.Thread(target=contend, args=(f"w{i}",))
            for i in range(contenders)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1

    def test_expired_lease_is_stolen(self, tmp_path):
        dead = LeaseDirectory(tmp_path, worker_id="dead", ttl=0.05)
        live = LeaseDirectory(tmp_path, worker_id="live")
        assert dead.try_acquire(DIGEST)
        time.sleep(0.15)  # expiry judged by the TTL recorded in the lease
        assert live.try_acquire(DIGEST)
        info = live.read(DIGEST)
        assert info is not None and info.worker_id == "live"

    def test_release_does_not_clobber_a_stolen_lease(self, tmp_path):
        # A worker wrongly presumed dead (paused > ttl) must not delete
        # the lease of whoever stole its cell.
        dead = LeaseDirectory(tmp_path, worker_id="dead", ttl=0.05)
        live = LeaseDirectory(tmp_path, worker_id="live")
        assert dead.try_acquire(DIGEST)
        time.sleep(0.15)
        assert live.try_acquire(DIGEST)
        dead.release(DIGEST)
        info = live.read(DIGEST)
        assert info is not None and info.worker_id == "live"

    def test_heartbeat_keeps_the_lease_alive(self, tmp_path):
        holder = LeaseDirectory(tmp_path, worker_id="holder", ttl=0.3)
        rival = LeaseDirectory(tmp_path, worker_id="rival")
        assert holder.try_acquire(DIGEST)
        with holder.heartbeating(DIGEST, interval=0.05):
            time.sleep(0.6)  # two full TTLs — dead without heartbeats
            assert not rival.try_acquire(DIGEST)
        info = rival.read(DIGEST)
        assert info is not None and info.worker_id == "holder"

    def test_corrupt_lease_is_reclaimed(self, tmp_path):
        leases = LeaseDirectory(tmp_path, worker_id="w1")
        path = leases.path_for(DIGEST)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ not json", encoding="utf-8")
        assert leases.read(DIGEST) is None
        assert leases.try_acquire(DIGEST)

    def test_held_tracks_acquire_and_release(self, tmp_path):
        leases = LeaseDirectory(tmp_path, worker_id="w1")
        assert leases.held() == []
        leases.try_acquire(DIGEST)
        assert leases.held() == [DIGEST]
        leases.release(DIGEST)
        assert leases.held() == []

    def test_heartbeat_preserves_acquired_at(self, tmp_path):
        leases = LeaseDirectory(tmp_path, worker_id="w1")
        leases.try_acquire(DIGEST)
        acquired = leases.read(DIGEST).acquired_at
        time.sleep(0.05)
        leases.heartbeat(DIGEST)
        info = leases.read(DIGEST)
        assert info.acquired_at == acquired
        assert info.heartbeat_at > acquired

    def test_invalid_ttl_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseDirectory(tmp_path, ttl=0)


class TestDistributedBackend:
    def test_requires_a_cache(self):
        with pytest.raises(ValueError):
            SweepExecutor(backend="distributed")

    def test_single_worker_matches_serial_byte_identical(self, tmp_path):
        serial = SweepExecutor().run(small_spec())
        distributed = SweepExecutor(
            cache=ResultCache(tmp_path),
            backend="distributed",
            poll_interval=0.05,
        ).run(small_spec())
        assert serialized(serial) == serialized(distributed)
        assert distributed.stats.simulated == 4

    def test_pooled_distributed_matches_serial(self, tmp_path):
        # workers > 1 composes local pooling with distributed leasing:
        # this participant claims up to `workers` leases and runs them
        # on a process pool, still byte-identical to serial.
        serial = SweepExecutor().run(small_spec())
        pooled = SweepExecutor(
            workers=2,
            cache=ResultCache(tmp_path),
            backend="distributed",
            poll_interval=0.05,
        ).run(small_spec())
        assert pooled.stats.simulated == 4
        assert serialized(serial) == serialized(pooled)
        # Everything published, every lease released.
        assert ResultCache(tmp_path).entry_count() == 4
        assert list(ResultCache(tmp_path).lease_root.glob("*.lease")) == []

    def test_resumed_sweep_reuses_every_published_cell(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = SweepExecutor(
            cache=cache, backend="distributed", poll_interval=0.05
        ).run(small_spec())
        resumed = SweepExecutor(
            cache=cache, backend="distributed", poll_interval=0.05
        ).run(small_spec())
        assert resumed.stats.simulated == 0
        assert resumed.stats.cache_hits == 4
        assert serialized(first) == serialized(resumed)

    def test_crashed_workers_cell_is_reclaimed_and_rerun(self, tmp_path):
        # A worker that died mid-cell leaves a lease that stops
        # heartbeating; after its recorded TTL any worker re-runs it.
        cache = ResultCache(tmp_path)
        victim = small_spec().cells()[0]
        stale = LeaseDirectory(
            cache.lease_root, worker_id="crashed", ttl=0.05
        )
        assert stale.try_acquire(config_digest(victim.config))
        time.sleep(0.15)
        sweep = SweepExecutor(
            cache=cache, backend="distributed", poll_interval=0.05
        ).run(small_spec())
        assert sweep.stats.simulated == 4
        assert serialized(sweep) == serialized(SweepExecutor().run(small_spec()))

    def test_waits_for_a_live_peers_result(self, tmp_path):
        # A cell leased by a live (heartbeating) peer is never stolen;
        # its published result is picked up as a cache hit.
        cache = ResultCache(tmp_path)
        cell = small_spec().cells()[0]
        digest = config_digest(cell.config)
        peer = LeaseDirectory(cache.lease_root, worker_id="peer", ttl=5.0)
        assert peer.try_acquire(digest)

        def compute_and_publish():
            payload = _execute_cell(cell.config.to_dict())
            time.sleep(0.3)
            cache.store(digest, payload)
            peer.release(digest)

        thread = threading.Thread(target=compute_and_publish)
        thread.start()
        try:
            sweep = SweepExecutor(
                cache=cache, backend="distributed", poll_interval=0.02
            ).run(small_spec())
        finally:
            thread.join()
        assert sweep.stats.simulated == 3
        assert sweep.stats.cache_hits == 1
        assert serialized(sweep) == serialized(SweepExecutor().run(small_spec()))


class TestMultiProcessSharding:
    def test_two_workers_share_the_sweep_and_agree_with_serial(
        self, tmp_path
    ):
        # The acceptance criterion: >= 2 concurrent worker processes
        # over one shared cache dir, byte-identical to serial, no cell
        # simulated twice.
        serial = SweepExecutor().run(small_spec())
        outs = [tmp_path / "w1.json", tmp_path / "w2.json"]
        workers = [
            multiprocessing.Process(
                target=_drain,
                args=(str(tmp_path / "cache"), str(out), f"w{i}"),
            )
            for i, out in enumerate(outs, start=1)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        reports = [
            json.loads(out.read_text(encoding="utf-8")) for out in outs
        ]
        for report in reports:
            assert report["results"] == serialized(serial)
        assert sum(report["simulated"] for report in reports) == 4

    def test_killed_worker_loses_no_published_cells(self, tmp_path):
        # Kill a worker mid-sweep; whatever it published stays
        # published, its in-flight lease expires, and a resumed sweep
        # simulates only what is genuinely missing.
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        worker = multiprocessing.Process(
            target=_drain,
            args=(str(cache_dir), str(tmp_path / "w.json"), "victim", 0.5),
        )
        worker.start()
        deadline = time.time() + 60  # replint: disable=R001 (polls real lease wall-clock)
        while cache.entry_count() < 1 and time.time() < deadline:  # replint: disable=R001
            time.sleep(0.02)
        worker.terminate()
        worker.join(timeout=30)
        published = cache.entry_count()
        assert published >= 1

        resumed = SweepExecutor(
            cache=cache, backend="distributed", poll_interval=0.05
        ).run(small_spec())
        assert resumed.stats.cache_hits >= published
        assert resumed.stats.cache_hits + resumed.stats.simulated == 4
        assert serialized(resumed) == serialized(
            SweepExecutor().run(small_spec())
        )
