"""Tests for the shipped scenario presets."""

import pytest

from repro.exec import SweepExecutor
from repro.exec.spec import ExperimentSpec
from repro.scenarios import (
    SCENARIOS,
    Scenario,
    available_scenarios,
    register_scenario,
    scenario_by_name,
)

#: The presets the redesign ships (plus the paper baseline).
SHIPPED = (
    "flash_crowd",
    "diurnal",
    "correlated_outage",
    "heterogeneous_quota",
    "slow_decay",
)


class TestRegistry:
    def test_at_least_five_shipped_presets(self):
        for name in SHIPPED:
            assert name in SCENARIOS
        assert "paper" in SCENARIOS
        assert len(available_scenarios()) >= 6

    def test_unknown_scenario_lists_choices(self):
        with pytest.raises(ValueError) as excinfo:
            scenario_by_name("apocalypse")
        assert "flash_crowd" in str(excinfo.value)

    def test_presets_have_descriptions(self):
        for name in available_scenarios():
            assert scenario_by_name(name).description

    def test_register_scenario_roundtrip(self):
        scenario = Scenario.scaled(population=50, rounds=100).named("test-reg")
        register_scenario(scenario)
        try:
            assert scenario_by_name("test-reg") is scenario
        finally:
            SCENARIOS.unregister("test-reg")


class TestPresetConfigs:
    @pytest.mark.parametrize("name", SHIPPED + ("paper",))
    def test_preset_builds_valid_config(self, name):
        config = scenario_by_name(name).build()
        # Construction re-validates; spot-check the headline knobs.
        assert config.population > 0
        assert config.data_blocks <= config.repair_threshold <= config.total_blocks

    def test_heterogeneous_quota_is_tight(self):
        tight = scenario_by_name("heterogeneous_quota").build()
        baseline = scenario_by_name("paper").build()
        assert tight.quota / tight.total_blocks < baseline.quota / baseline.total_blocks

    def test_correlated_outage_has_grace(self):
        assert scenario_by_name("correlated_outage").build().grace_rounds > 0


class TestProtocolPresets:
    """The PR 5 protocol-fidelity presets."""

    PROTOCOL_PRESETS = ("constrained_uplink", "unfair_freeriders")

    @pytest.mark.parametrize("name", PROTOCOL_PRESETS)
    def test_registered_and_protocol_fidelity(self, name):
        config = scenario_by_name(name).build()
        assert config.fidelity == "protocol"

    def test_constrained_uplink_prices_big_archives(self):
        config = scenario_by_name("constrained_uplink").build()
        assert config.archive_bytes > SCENARIOS.get("paper").build().archive_bytes
        assert config.link_profile == "paper-dsl"

    def test_unfair_freeriders_enforces_fairness(self):
        assert scenario_by_name("unfair_freeriders").build().fairness_factor == 1.0

    @pytest.mark.parametrize("name", PROTOCOL_PRESETS)
    def test_preset_runs_end_to_end(self, name):
        result = (
            scenario_by_name(name)
            .with_population(60)
            .with_rounds(250)
            .run()
        )
        assert result.final_round == 250
        assert result.metrics.protocol["transfers_completed"] > 0

    def test_with_fidelity_round_trips_any_preset(self):
        protocol = scenario_by_name("paper").with_fidelity("protocol")
        assert protocol.build().fidelity == "protocol"
        # Immutability: the registered preset itself is untouched.
        assert scenario_by_name("paper").build().fidelity == "abstract"
        assert protocol.with_fidelity("abstract").build().fidelity == "abstract"

    def test_describe_mentions_fidelity(self):
        text = scenario_by_name("unfair_freeriders").describe()
        assert "fidelity=protocol" in text
        assert "fairness=1" in text


class TestPresetSmokeRuns:
    @pytest.mark.parametrize("name", SHIPPED + ("paper",))
    def test_preset_runs_end_to_end(self, name):
        """Every shipped preset runs (shrunk) and produces activity."""
        result = (
            scenario_by_name(name)
            .with_population(60)
            .with_rounds(250)
            .run()
        )
        assert result.final_round == 250
        assert result.peers_created >= 60
        assert result.metrics.total_repairs >= 0


class TestScenarioAxis:
    def test_from_scenarios_spec(self):
        spec = ExperimentSpec.from_scenarios(
            ["flash_crowd", "slow_decay"], seeds=(0, 1)
        )
        assert spec.cell_count == 4
        configs = {cell.param("scenario"): cell.config for cell in spec.cells()}
        assert configs["flash_crowd"].profiles != configs["slow_decay"].profiles

    def test_from_scenarios_unknown_name(self):
        with pytest.raises(ValueError):
            ExperimentSpec.from_scenarios(["flash_crowd", "nope"])

    def test_from_scenarios_empty(self):
        with pytest.raises(ValueError):
            ExperimentSpec.from_scenarios([])

    def test_scenario_axis_executes(self):
        shrunk = []
        for name in ("flash_crowd", "diurnal"):
            scenario = (
                scenario_by_name(name)
                .with_population(50)
                .with_rounds(150)
                .named(f"test-{name}")
            )
            register_scenario(scenario)
            shrunk.append(scenario.name)
        try:
            sweep = SweepExecutor().run(
                ExperimentSpec.from_scenarios(shrunk, seeds=(0,))
            )
            by_scenario = sweep.by_axis("scenario")
            assert set(by_scenario) == set(shrunk)
            for results in by_scenario.values():
                assert results[0].final_round == 150
        finally:
            for name in shrunk:
                SCENARIOS.unregister(name)
