"""Tests for the chainable Scenario builder."""

import pytest

from repro.churn.profiles import CHURN_MIXES, Profile
from repro.core.selection import SELECTION_STRATEGIES, SelectionStrategy
from repro.registry import UnknownComponentError
from repro.scenarios import Scenario
from repro.sim.config import PAPER_OBSERVERS, SimulationConfig


class TestChaining:
    def test_issue_example_chain(self):
        """The composition API promised by the redesign, end to end."""
        config = (
            Scenario.paper()
            .with_churn("flash_crowd")
            .with_selection("availability")
            .observers(PAPER_OBSERVERS)
            .build()
        )
        assert isinstance(config, SimulationConfig)
        assert config.population == 25_000
        assert config.selection_strategy == "availability"
        assert config.observers == PAPER_OBSERVERS
        assert [p.name for p in config.profiles] == ["Core", "Regular", "Crowd"]

    def test_builder_is_immutable(self):
        base = Scenario.scaled(population=100, rounds=500)
        derived = base.with_selection("random").with_quota(99)
        assert base.build().selection_strategy == "age"
        assert base.build().quota != 99
        assert derived.build().selection_strategy == "random"
        assert derived.build().quota == 99

    def test_with_churn_accepts_explicit_profiles(self):
        profiles = (
            Profile("OnlyOne", 1.0, (24, 240), 0.5),
        )
        config = Scenario.scaled().with_churn(profiles).build()
        assert config.profiles == profiles

    def test_with_churn_validates_explicit_mix(self):
        with pytest.raises(ValueError):
            Scenario.scaled().with_churn((Profile("Half", 0.5, None, 0.9),))

    def test_unknown_names_fail_fast(self):
        with pytest.raises(UnknownComponentError):
            Scenario.scaled().with_churn("tsunami")
        with pytest.raises(UnknownComponentError):
            Scenario.scaled().with_selection("fortune-teller")
        with pytest.raises(UnknownComponentError):
            Scenario.scaled().with_acceptance("telepathy")

    def test_with_code_rescales_threshold(self):
        # scaled() default: k=16, n=32, k'=18 (slack 2/16).
        scenario = Scenario.scaled().with_code(8, 8)
        config = scenario.build()
        assert (config.data_blocks, config.parity_blocks) == (8, 8)
        assert config.data_blocks < config.repair_threshold <= 16

    def test_with_code_to_parity_free_target(self):
        config = Scenario.scaled().with_code(16, 0).build()
        assert config.parity_blocks == 0
        assert config.repair_threshold == 16

    def test_with_code_from_parity_free_base(self):
        base = SimulationConfig(
            data_blocks=16, parity_blocks=0, repair_threshold=16
        )
        config = Scenario.from_config(base).with_code(16, 16).build()
        assert config.total_blocks == 32
        assert config.repair_threshold == 16  # zero slack preserved

    def test_override_escape_hatch(self):
        config = Scenario.scaled().override(warmup_rounds=10).build()
        assert config.warmup_rounds == 10

    def test_named_and_describe(self):
        scenario = Scenario.scaled().named("my-workload", "a test workload")
        assert scenario.name == "my-workload"
        text = scenario.describe()
        assert "my-workload" in text and "a test workload" in text


class TestTerminalOperations:
    def test_run_executes_simulation(self):
        result = (
            Scenario.scaled(population=60, rounds=200)
            .with_seed(3)
            .run()
        )
        assert result.final_round == 200
        assert result.config.seed == 3

    def test_spec_round_trips_seeds(self):
        scenario = Scenario.scaled(population=60, rounds=200)
        spec = scenario.spec(seeds=(0, 1))
        cells = spec.cells()
        assert [cell.seed for cell in cells] == [0, 1]
        assert all(cell.config.population == 60 for cell in cells)

    def test_from_config(self):
        config = SimulationConfig.scaled(population=77)
        assert Scenario.from_config(config).build() is config


class TestUserRegisteredComponents:
    """A strategy registered from user code runs without core edits."""

    def test_custom_strategy_end_to_end(self):
        @SELECTION_STRATEGIES.register("test-youngest")
        class YoungestFirst(SelectionStrategy):
            name = "test-youngest"

            def rank(self, candidates, rng):
                jitter = rng.random(len(candidates))
                order = sorted(
                    range(len(candidates)),
                    key=lambda i: (candidates[i].age, jitter[i]),
                )
                return [candidates[i].peer_id for i in order]

        try:
            result = (
                Scenario.scaled(population=60, rounds=200)
                .with_selection("test-youngest")
                .run()
            )
            assert result.config.selection_strategy == "test-youngest"
            assert result.final_round == 200
        finally:
            SELECTION_STRATEGIES.unregister("test-youngest")

    def test_custom_churn_mix_end_to_end(self):
        from repro.churn.profiles import register_mix

        register_mix(
            "test-bimodal",
            (
                Profile("Rock", 0.3, None, 0.9),
                Profile("Flit", 0.7, (24, 240), 0.5, mean_online_session=6.0),
            ),
        )
        try:
            result = (
                Scenario.scaled(population=60, rounds=200)
                .with_churn("test-bimodal")
                .run()
            )
            assert [p.name for p in result.config.profiles] == ["Rock", "Flit"]
        finally:
            CHURN_MIXES.unregister("test-bimodal")
