"""Tests for the typed component registry."""

import pytest

from repro.registry import (
    DuplicateComponentError,
    Registry,
    UnknownComponentError,
)


class TestRegistration:
    def test_direct_register_and_get(self):
        registry = Registry("widget")
        registry.register("a", 1)
        assert registry.get("a") == 1

    def test_decorator_register_returns_component(self):
        registry = Registry("widget")

        @registry.register("cls")
        class Widget:
            pass

        assert registry.get("cls") is Widget
        assert Widget.__name__ == "Widget"

    def test_duplicate_rejected(self):
        registry = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(DuplicateComponentError):
            registry.register("a", 2)
        assert registry.get("a") == 1

    def test_replace_overrides(self):
        registry = Registry("widget")
        registry.register("a", 1)
        registry.register("a", 2, replace=True)
        assert registry.get("a") == 2

    def test_empty_name_rejected(self):
        registry = Registry("widget")
        with pytest.raises(ValueError):
            registry.register("", 1)
        with pytest.raises(ValueError):
            registry.register(None, 1)(2)

    def test_unregister(self):
        registry = Registry("widget")
        registry.register("a", 1)
        assert registry.unregister("a") == 1
        assert "a" not in registry

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError):
            Registry("")


class TestLookup:
    def test_unknown_name_lists_choices(self):
        registry = Registry("widget")
        registry.register("alpha", 1)
        registry.register("beta", 2)
        with pytest.raises(UnknownComponentError) as excinfo:
            registry.get("gamma")
        message = str(excinfo.value)
        assert "widget" in message
        assert "alpha" in message and "beta" in message

    def test_unknown_name_suggests_close_match(self):
        registry = Registry("widget")
        registry.register("availability", 1)
        with pytest.raises(UnknownComponentError) as excinfo:
            registry.get("avaliability")
        assert "did you mean 'availability'" in str(excinfo.value)

    def test_unknown_is_value_error(self):
        """Call sites historically raised ValueError; keep that contract."""
        registry = Registry("widget")
        with pytest.raises(ValueError):
            registry.check("missing")

    def test_create_calls_factory(self):
        registry = Registry("factory")
        registry.register("adder", lambda a, b=0: a + b)
        assert registry.create("adder", 2, b=3) == 5

    def test_create_rejects_non_callable(self):
        registry = Registry("value")
        registry.register("x", 42)
        with pytest.raises(TypeError):
            registry.create("x")


class TestMappingProtocol:
    def test_names_sorted(self):
        registry = Registry("widget")
        registry.register("b", 2)
        registry.register("a", 1)
        assert registry.names() == ["a", "b"]
        assert list(registry) == ["a", "b"]
        assert len(registry) == 2
        assert registry.items() == [("a", 1), ("b", 2)]

    def test_contains(self):
        registry = Registry("widget")
        registry.register("a", 1)
        assert "a" in registry
        assert "b" not in registry


class TestBuiltinRegistries:
    """The shipped components are registered under their documented names."""

    def test_selection_strategies(self):
        from repro.core.selection import SELECTION_STRATEGIES

        assert SELECTION_STRATEGIES.names() == [
            "age", "availability", "oracle", "random",
        ]

    def test_acceptance_rules(self):
        from repro.core.acceptance import ACCEPTANCE_RULES

        assert ACCEPTANCE_RULES.names() == ["age", "uniform"]

    def test_lifetime_models(self):
        from repro.churn.lifetimes import LIFETIME_MODELS, lifetime_by_name

        assert LIFETIME_MODELS.names() == ["immortal", "pareto", "uniform"]
        assert lifetime_by_name("uniform", low=10, high=20).mean() == 15

    def test_churn_mixes(self):
        from repro.churn.profiles import CHURN_MIXES, PAPER_PROFILES

        assert "paper" in CHURN_MIXES
        assert CHURN_MIXES.get("paper") == PAPER_PROFILES
        for name in ("flash_crowd", "diurnal", "correlated_outage",
                     "heterogeneous", "slow_decay"):
            assert name in CHURN_MIXES

    def test_policy_presets(self):
        from repro.core.policy import POLICY_PRESETS, policy_by_name

        paper = policy_by_name("paper")
        assert (paper.k, paper.n, paper.repair_threshold) == (128, 256, 148)
        assert "scaled" in POLICY_PRESETS

    def test_codec_backends(self):
        from repro.erasure.matrix import CODEC_BACKENDS, DEFAULT_BACKEND

        assert "python" in CODEC_BACKENDS
        assert DEFAULT_BACKEND in CODEC_BACKENDS

    def test_register_mix_validates(self):
        from repro.churn.profiles import Profile, register_mix

        with pytest.raises(ValueError):
            register_mix("broken-mix", (Profile("Half", 0.5, None, 0.9),))
